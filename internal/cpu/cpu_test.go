package cpu

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/units"
)

func warm(n int) []units.Celsius {
	temps := make([]units.Celsius, n)
	for i := range temps {
		temps[i] = 45
	}
	return temps
}

func TestXeonModelShape(t *testing.T) {
	m := NewXeonE5520()
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if m.NumCores != 4 {
		t.Errorf("cores = %d", m.NumCores)
	}
	// §3.2: 2.26 GHz top, 133 MHz steps, 1.6 GHz floor (71 % of max).
	if m.PStates[0].Freq != 2.26e9 {
		t.Errorf("top freq = %v", m.PStates[0].Freq)
	}
	bottom := m.PStates[len(m.PStates)-1].Freq
	ratio := float64(bottom) / float64(m.PStates[0].Freq)
	if math.Abs(ratio-0.71) > 0.01 {
		t.Errorf("bottom/top = %.3f, want ≈0.71 (1.6/2.26)", ratio)
	}
	if len(m.PStates) != 6 {
		t.Errorf("ladder has %d states, want 6", len(m.PStates))
	}
	for i := 1; i < len(m.PStates); i++ {
		step := float64(m.PStates[i-1].Freq - m.PStates[i].Freq)
		if math.Abs(step-133e6) > 1e6 {
			t.Errorf("step %d = %v Hz", i, step)
		}
		if m.PStates[i].Voltage > m.PStates[i-1].Voltage {
			t.Errorf("voltage not monotone at %d", i)
		}
	}
}

func TestModelValidateErrors(t *testing.T) {
	good := NewXeonE5520()
	mutations := []func(*Model){
		func(m *Model) { m.NumCores = 0 },
		func(m *Model) { m.PStates = nil },
		func(m *Model) { m.PStates = []PState{{Freq: 1e9}, {Freq: 2e9}} },
		func(m *Model) { m.LeakSlope = 0 },
		func(m *Model) { m.C1ELeakFactor = 1.5 },
		func(m *Model) { m.TCCDutySteps = 0 },
	}
	for i, mut := range mutations {
		m := *good
		m.PStates = append([]PState(nil), good.PStates...)
		mut(&m)
		if err := m.Validate(); err == nil {
			t.Errorf("mutation %d passed validation", i)
		}
	}
}

func TestCStateString(t *testing.T) {
	if C0.String() != "C0" || C1Halt.String() != "C1-halt" || C1E.String() != "C1E" {
		t.Error("CState names wrong")
	}
	if CState(9).String() == "" {
		t.Error("unknown CState empty")
	}
}

func TestPowerOrderingAcrossCStates(t *testing.T) {
	// At equal temperature: active > halt > C1E — the ladder Dimetrodon
	// exploits and p4tcc cannot.
	c := NewChip(NewXeonE5520())
	c.SetActive(0, 1.0)
	p0 := c.CorePower(0, 45)
	c.SetIdle(0, C1Halt)
	p1 := c.CorePower(0, 45)
	c.SetIdle(0, C1E)
	p2 := c.CorePower(0, 45)
	if !(p0 > p1 && p1 > p2) {
		t.Errorf("power ordering violated: C0=%v halt=%v C1E=%v", p0, p1, p2)
	}
	if p2 <= 0 {
		t.Errorf("C1E power non-positive: %v", p2)
	}
}

func TestLeakageMonotoneInTemperature(t *testing.T) {
	// Non-decreasing everywhere (the exponential saturates at the leak
	// cap), strictly increasing below the cap region.
	c := NewChip(NewXeonE5520())
	c.SetActive(0, 1.0)
	f := func(aRaw, bRaw uint8) bool {
		a := units.Celsius(20 + float64(aRaw%60))
		b := units.Celsius(20 + float64(bRaw%60))
		pa, pb := c.CorePower(0, a), c.CorePower(0, b)
		switch {
		case a < b:
			return pa <= pb
		case a > b:
			return pa >= pb
		default:
			return pa == pb
		}
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	// Strict below the cap.
	if !(c.CorePower(0, 40) < c.CorePower(0, 50)) {
		t.Error("leakage not strictly increasing below the cap")
	}
	// Capped: equal at extreme temperatures.
	if c.CorePower(0, 75) != c.CorePower(0, 90) {
		t.Error("leakage not saturated above the cap")
	}
}

func TestLeakageCouplingAblation(t *testing.T) {
	c := NewChip(NewXeonE5520())
	c.LeakageTempCoupling = 0
	c.SetActive(0, 1.0)
	if c.CorePower(0, 30) != c.CorePower(0, 70) {
		t.Error("decoupled leakage still varies with temperature")
	}
}

func TestPowerScalesWithActivityFactor(t *testing.T) {
	c := NewChip(NewXeonE5520())
	c.SetActive(0, 1.0)
	hot := c.CorePower(0, 45)
	c.SetActive(0, 0.5)
	cool := c.CorePower(0, 45)
	dynFull := float64(hot) - float64(cool)
	// Halving the power factor removes half the dynamic component.
	wantDyn := float64(c.Model.CoreDynamicMax) * 0.5
	if math.Abs(dynFull-wantDyn) > 1e-9 {
		t.Errorf("dynamic delta = %v, want %v", dynFull, wantDyn)
	}
}

func TestDVFSPowerAndRate(t *testing.T) {
	c := NewChip(NewXeonE5520())
	c.SetActive(0, 1.0)
	top := c.CorePower(0, 45)
	rateTop := c.ProgressRate()
	if rateTop != 1.0 {
		t.Errorf("top rate = %v", rateTop)
	}
	c.SetPState(c.PStateCount() - 1)
	bottom := c.CorePower(0, 45)
	rateBot := c.ProgressRate()
	if bottom >= top {
		t.Error("bottom P-state not cheaper")
	}
	wantRate := float64(c.Model.PStates[c.PStateCount()-1].Freq) / float64(c.Model.MaxFreq())
	if math.Abs(rateBot-wantRate) > 1e-12 {
		t.Errorf("bottom rate = %v, want %v", rateBot, wantRate)
	}
	// Cubic-ish: relative power drop exceeds relative rate drop at the
	// bottom of the ladder (voltage has ramped down).
	dynDropRatio := (float64(top) - float64(bottom)) / float64(top)
	rateDropRatio := 1 - rateBot
	if dynDropRatio <= rateDropRatio {
		t.Errorf("VFS power drop (%.3f) not superlinear vs rate drop (%.3f)", dynDropRatio, rateDropRatio)
	}
}

func TestPStateClamping(t *testing.T) {
	c := NewChip(NewXeonE5520())
	c.SetPState(-5)
	if c.PState() != 0 {
		t.Error("negative P-state not clamped")
	}
	c.SetPState(99)
	if c.PState() != c.PStateCount()-1 {
		t.Error("high P-state not clamped")
	}
}

func TestTCCDuty(t *testing.T) {
	c := NewChip(NewXeonE5520())
	c.SetDuty(0.5)
	if c.Duty() != 0.5 {
		t.Errorf("duty = %v", c.Duty())
	}
	if c.ProgressRate() != 0.5 {
		t.Errorf("rate under duty = %v", c.ProgressRate())
	}
	c.SetDuty(0.01) // below 1/8 floor
	if c.Duty() != 1.0/8 {
		t.Errorf("duty floor = %v", c.Duty())
	}
	c.SetDuty(2)
	if c.Duty() != 1 {
		t.Errorf("duty cap = %v", c.Duty())
	}
}

func TestTCCResidualDynamic(t *testing.T) {
	// Gating to duty d leaves TCCResidualDyn·(1−d) of dynamic power: the
	// saving is sublinear, and leakage is untouched.
	c := NewChip(NewXeonE5520())
	c.SetActive(0, 1.0)
	full := float64(c.CorePower(0, 45))
	c.SetDuty(0.5)
	gated := float64(c.CorePower(0, 45))
	dyn := float64(c.Model.CoreDynamicMax)
	res := c.Model.TCCResidualDyn
	wantSaving := dyn * (1 - (0.5 + res*0.5))
	if math.Abs((full-gated)-wantSaving) > 1e-9 {
		t.Errorf("TCC saving = %v, want %v", full-gated, wantSaving)
	}
}

func TestUncoreIdleOnlyWhenAllC1E(t *testing.T) {
	c := NewChip(NewXeonE5520())
	if c.UncorePower() != c.Model.UncoreAllIdle {
		t.Error("fresh chip (all C1E) should be package-idle")
	}
	c.SetActive(2, 0.5)
	if c.UncorePower() != c.Model.UncoreActive {
		t.Error("one active core should wake the uncore")
	}
	c.SetIdle(2, C1Halt)
	if c.UncorePower() != c.Model.UncoreActive {
		t.Error("a halted (non-C1E) core keeps the uncore awake")
	}
	c.SetIdle(2, C1E)
	if c.UncorePower() != c.Model.UncoreAllIdle {
		t.Error("all-C1E should repackage-idle")
	}
}

func TestTotalPower(t *testing.T) {
	c := NewChip(NewXeonE5520())
	for i := 0; i < 4; i++ {
		c.SetActive(i, 1.0)
	}
	temps := warm(4)
	var sum units.Watts
	for i := 0; i < 4; i++ {
		sum += c.CorePower(i, temps[i])
	}
	sum += c.UncorePower()
	if got := c.TotalPower(temps); math.Abs(float64(got-sum)) > 1e-9 {
		t.Errorf("TotalPower = %v, want %v", got, sum)
	}
	// cpuburn-at-45C draw should be near the 80 W TDP.
	if got := float64(c.TotalPower(temps)); got < 55 || got > 90 {
		t.Errorf("cpuburn power %v outside plausible TDP band", got)
	}
}

func TestTotalPowerPanicsOnSizeMismatch(t *testing.T) {
	c := NewChip(NewXeonE5520())
	defer func() {
		if recover() == nil {
			t.Error("TotalPower with wrong temp count did not panic")
		}
	}()
	c.TotalPower(warm(2))
}

func TestSetIdleC0Panics(t *testing.T) {
	c := NewChip(NewXeonE5520())
	defer func() {
		if recover() == nil {
			t.Error("SetIdle(C0) did not panic")
		}
	}()
	c.SetIdle(0, C0)
}

func TestNegativePowerFactorClamped(t *testing.T) {
	c := NewChip(NewXeonE5520())
	c.SetActive(0, -3)
	c.SetActive(1, 0)
	if c.CorePower(0, 45) != c.CorePower(1, 45) {
		t.Error("negative power factor not clamped to zero")
	}
}

func TestC1EVoltageDropCutsLeakage(t *testing.T) {
	m := NewXeonE5520()
	c := NewChip(m)
	c.SetIdle(0, C1Halt)
	halt := float64(c.CorePower(0, 60)) - float64(m.C1EResidual)
	c.SetIdle(0, C1E)
	c1e := float64(c.CorePower(0, 60)) - float64(m.C1EResidual)
	if math.Abs(c1e/halt-m.C1ELeakFactor) > 1e-9 {
		t.Errorf("C1E/halt leak ratio = %v, want %v", c1e/halt, m.C1ELeakFactor)
	}
}

func TestStateAccessor(t *testing.T) {
	c := NewChip(NewXeonE5520())
	c.SetActive(1, 1)
	if c.State(1) != C0 || c.State(0) != C1E {
		t.Error("State accessor wrong")
	}
	if c.NumCores() != 4 {
		t.Error("NumCores wrong")
	}
	if c.Freq() != c.Model.PStates[0].Freq || c.Voltage() != c.Model.PStates[0].Voltage {
		t.Error("Freq/Voltage accessors wrong")
	}
}
