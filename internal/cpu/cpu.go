// Package cpu models the processor of the paper's testbed: an Intel
// Nehalem-class Xeon E5520 — four cores at 2.26 GHz, an 80 W TDP, the C1E
// enhanced-halt idle state (which does not flush caches), a DVFS ladder in
// 133 MHz steps down to 1.60 GHz, and the thermal control circuit's (TCC)
// fine-grained clock duty-cycle modulation used by FreeBSD's p4tcc driver.
//
// Power is split per core into switching (dynamic) power — scaling with
// frequency, squared voltage, the workload's activity factor and the TCC duty
// cycle — and leakage power, which scales with squared voltage and grows
// exponentially with junction temperature. The exponential leakage term is
// what turns idle-cycle injection's linear duty reduction into the nonlinear
// temperature trade-offs of Figures 3 and 4: near the cpuburn operating point
// the leakage-temperature feedback loop amplifies small average-power savings,
// and large junction temperature swings (long idle quanta) raise average
// leakage via the convexity of the exponential.
package cpu

import (
	"fmt"
	"math"

	"repro/internal/units"
)

// CState is a core idle/active state.
type CState int

const (
	// C0 is the active state: the core executes instructions.
	C0 CState = iota
	// C1Halt is a plain halt: clocks gated at full voltage. This is what a
	// nop/hlt loop or TCC gating achieves — dynamic power stops but
	// leakage continues at the full-voltage rate and the package cannot
	// enter a low-power state.
	C1Halt
	// C1E is the enhanced halt the paper's processor supported: clocks
	// stopped and core voltage lowered, cutting leakage substantially.
	// The scheduler's idle thread reaches C1E.
	C1E
)

// String returns the conventional state name.
func (c CState) String() string {
	switch c {
	case C0:
		return "C0"
	case C1Halt:
		return "C1-halt"
	case C1E:
		return "C1E"
	default:
		return fmt.Sprintf("CState(%d)", int(c))
	}
}

// PState is one DVFS operating point.
type PState struct {
	Freq    units.Hertz
	Voltage float64 // volts
}

// Model holds the electrical and architectural constants of a processor.
// See NewXeonE5520 for the calibrated testbed part.
type Model struct {
	Name     string
	NumCores int

	// PStates is the DVFS ladder, sorted by descending frequency;
	// PStates[0] is the nominal (maximum) operating point.
	PStates []PState

	// CoreDynamicMax is the switching power of one core running a
	// power-factor-1.0 workload (cpuburn) at the top P-state, full duty.
	CoreDynamicMax units.Watts

	// Leakage: P_leak(T, V) = LeakNominal · exp((T−LeakRefTemp)/LeakSlope)
	// · (V/Vmax)², further scaled by C1ELeakFactor in C1E.
	LeakNominal   units.Watts
	LeakRefTemp   units.Celsius
	LeakSlope     units.Celsius
	C1ELeakFactor float64

	// C1EResidual is the small fixed draw of a core parked in C1E
	// (bus/snoop interface kept alive).
	C1EResidual units.Watts

	// UncoreActive is the package power (caches, memory controller,
	// interconnect) while any core is awake; UncoreAllIdle applies when
	// every core sits in C1E and the package clocks down.
	UncoreActive  units.Watts
	UncoreAllIdle units.Watts

	// C1ELatency is the entry/exit transition time ("tens of
	// microseconds" per the paper's PowerNap citation). Injected idle
	// quanta shorter than roughly twice this value waste their window.
	C1ELatency units.Time

	// TCCDutySteps is the number of duty levels the thermal control
	// circuit supports (Intel's clock modulation has 8: 12.5 %..100 %).
	TCCDutySteps int

	// TCCResidualDyn is the fraction of dynamic power still drawn during
	// TCC-gated clock windows: STPCLK modulation stalls instruction issue
	// but leaves the PLL and clock distribution running, so the saving is
	// less than proportional to the duty reduction — one of the reasons
	// p4tcc "performed significantly worse" in Figure 4.
	TCCResidualDyn float64

	// LeakCapFactor saturates leakage at this multiple of LeakNominal.
	// The pure exponential is only valid near the calibrated operating
	// range; off-nominal scenarios (cooling failures) would otherwise
	// diverge numerically where real silicon saturates and trips PROCHOT.
	LeakCapFactor float64
}

// NewXeonE5520 returns the calibrated model of the paper's testbed processor.
// The constants reproduce the published observables: ≈80 W package draw under
// cpuburn, a ≈20 W idle floor (Figure 1's band), an ≈19 °C junction rise over
// idle (Figure 2), and a leakage share of core power around a third, typical
// of 45 nm parts of that era.
func NewXeonE5520() *Model {
	m := &Model{
		Name:           "Intel Xeon E5520 (simulated)",
		NumCores:       4,
		CoreDynamicMax: 11.0,
		LeakNominal:    8.0,
		LeakRefTemp:    55,
		LeakSlope:      10,
		C1ELeakFactor:  0.22,
		C1EResidual:    0.3,
		// The all-idle uncore saving is modest: C1E is a core state on
		// this part; with every core halted the package sheds only its
		// interface activity. A small delta is also what the paper's
		// §3.3 energy-neutrality measurement implies — a large one
		// would make race-to-idle (whose idle tail aligns all cores)
		// visibly cheaper than Dimetrodon's interleaved idling.
		UncoreActive:   15.0,
		UncoreAllIdle:  14.0,
		C1ELatency:     30 * units.Microsecond,
		TCCDutySteps:   8,
		TCCResidualDyn: 0.12,
		LeakCapFactor:  2.5,
	}
	// DVFS ladder: 2.26 GHz down to 1.60 GHz in 133 MHz steps (§3.2). The
	// voltage ladder is flat at the top — the upper P-states share the
	// nominal voltage plane, scaling frequency only, as contemporary
	// SpeedStep tables did — and ramps down to the minimum voltage over
	// the lower states. This convexity is what gives VFS its modest
	// benefit at small reductions but "quadratic reduction in power
	// utilization as voltage scales down" at large ones (§3.4), producing
	// the crossover with Dimetrodon around 30 % temperature reduction.
	const (
		fMax  = 2.26e9
		fMin  = 1.60e9
		step  = 133e6
		vMax  = 1.10
		vMin  = 0.85
		vKnee = 1.995e9 // voltage flat above this frequency
	)
	for f := fMax; f >= fMin-10e6; f -= step {
		v := vMax
		if f < vKnee {
			v = vMin + (vMax-vMin)*(f-fMin)/(vKnee-fMin)
			if v < vMin {
				v = vMin
			}
		}
		m.PStates = append(m.PStates, PState{Freq: units.Hertz(f), Voltage: v})
	}
	return m
}

// Validate reports configuration errors.
func (m *Model) Validate() error {
	if m.NumCores <= 0 {
		return fmt.Errorf("cpu: model %q has %d cores", m.Name, m.NumCores)
	}
	if len(m.PStates) == 0 {
		return fmt.Errorf("cpu: model %q has no P-states", m.Name)
	}
	for i := 1; i < len(m.PStates); i++ {
		if m.PStates[i].Freq >= m.PStates[i-1].Freq {
			return fmt.Errorf("cpu: P-states not sorted by descending frequency at %d", i)
		}
	}
	if m.LeakSlope <= 0 {
		return fmt.Errorf("cpu: leakage slope must be positive, got %v", m.LeakSlope)
	}
	if m.C1ELeakFactor < 0 || m.C1ELeakFactor > 1 {
		return fmt.Errorf("cpu: C1E leak factor %v outside [0,1]", m.C1ELeakFactor)
	}
	if m.TCCDutySteps < 1 {
		return fmt.Errorf("cpu: TCC needs at least one duty step")
	}
	return nil
}

// MaxFreq returns the nominal frequency.
func (m *Model) MaxFreq() units.Hertz { return m.PStates[0].Freq }

// coreState is the runtime state of one core.
type coreState struct {
	cstate      CState
	powerFactor float64 // activity factor of the running workload in C0
}

// Chip is a running instance of a Model: per-core C-states and activity
// factors plus the chip-wide P-state and TCC duty cycle (both are chip-wide
// on this hardware — the paper notes per-core DVFS was not available on
// commodity parts).
type Chip struct {
	Model *Model

	cores  []coreState
	pstate int     // index into Model.PStates
	duty   float64 // TCC duty cycle in (0, 1]; 1 = no modulation

	// Epoch counters for power-model memoisation: stateEpoch[i] advances
	// whenever core i's C-state or activity factor actually changes,
	// cfgEpoch whenever a chip-wide knob (P-state, TCC duty) does. A
	// consumer that stashed a linearisation of core i's power can keep
	// using it exactly as long as CoreEpoch(i) is unchanged — scheduler
	// events that re-dispatch the same thread bump nothing.
	stateEpoch []uint32
	cfgEpoch   uint32
	totalEpoch uint64

	// LeakageTempCoupling scales the temperature exponent; 1 is the
	// physical model and 0 freezes leakage at its reference value. It
	// exists for the leakage ablation study (BenchmarkAblationLeakage).
	LeakageTempCoupling float64
}

// NewChip returns a Chip with all cores idle in C1E at the top P-state and
// full duty.
func NewChip(m *Model) *Chip {
	if err := m.Validate(); err != nil {
		panic(err)
	}
	c := &Chip{Model: m, duty: 1, LeakageTempCoupling: 1}
	c.cores = make([]coreState, m.NumCores)
	c.stateEpoch = make([]uint32, m.NumCores)
	for i := range c.cores {
		c.cores[i] = coreState{cstate: C1E, powerFactor: 0}
	}
	return c
}

// NumCores returns the core count.
func (c *Chip) NumCores() int { return len(c.cores) }

// SetActive marks core id as executing a workload with the given activity
// (power) factor: cpuburn is 1.0, cooler workloads less.
func (c *Chip) SetActive(id int, powerFactor float64) {
	if powerFactor < 0 {
		powerFactor = 0
	}
	next := coreState{cstate: C0, powerFactor: powerFactor}
	if c.cores[id] != next {
		c.cores[id] = next
		c.stateEpoch[id]++
		c.totalEpoch++
	}
}

// ActiveChanges reports whether SetActive(id, powerFactor) would change the
// chip's power model — the machine layer's lazy-integration seam asks before
// mutating, because a pending thermal window must be settled under the
// pre-change configuration.
func (c *Chip) ActiveChanges(id int, powerFactor float64) bool {
	if powerFactor < 0 {
		powerFactor = 0
	}
	return c.cores[id] != coreState{cstate: C0, powerFactor: powerFactor}
}

// IdleChanges is ActiveChanges' counterpart for SetIdle.
func (c *Chip) IdleChanges(id int, s CState) bool {
	return c.cores[id] != coreState{cstate: s}
}

// SetIdle parks core id in the given idle state (C1Halt or C1E).
func (c *Chip) SetIdle(id int, s CState) {
	if s == C0 {
		panic("cpu: SetIdle with C0; use SetActive")
	}
	next := coreState{cstate: s}
	if c.cores[id] != next {
		c.cores[id] = next
		c.stateEpoch[id]++
		c.totalEpoch++
	}
}

// TotalEpoch returns a token advancing on every power-model change anywhere
// on the chip; equal tokens guarantee the whole power vector (as a function
// of temperatures) is unchanged.
func (c *Chip) TotalEpoch() uint64 { return c.totalEpoch }

// CoreEpoch returns a token identifying core id's current power-model
// configuration: equal tokens guarantee the core's power as a function of
// temperature is unchanged.
func (c *Chip) CoreEpoch(id int) uint64 {
	return uint64(c.cfgEpoch)<<32 | uint64(c.stateEpoch[id])
}

// State returns core id's current C-state.
func (c *Chip) State(id int) CState { return c.cores[id].cstate }

// SetPState selects the chip-wide DVFS operating point by ladder index
// (0 = fastest). Out-of-range indices are clamped.
func (c *Chip) SetPState(idx int) {
	if idx < 0 {
		idx = 0
	}
	if idx >= len(c.Model.PStates) {
		idx = len(c.Model.PStates) - 1
	}
	if c.pstate != idx {
		c.pstate = idx
		c.cfgEpoch++
		c.totalEpoch++
	}
}

// PState returns the current ladder index.
func (c *Chip) PState() int { return c.pstate }

// PStateCount returns the number of ladder entries.
func (c *Chip) PStateCount() int { return len(c.Model.PStates) }

// SetDuty sets the chip-wide TCC duty cycle, clamped to (1/steps, 1].
func (c *Chip) SetDuty(d float64) {
	min := 1 / float64(c.Model.TCCDutySteps)
	if d < min {
		d = min
	}
	if d > 1 {
		d = 1
	}
	if c.duty != d {
		c.duty = d
		c.cfgEpoch++
		c.totalEpoch++
	}
}

// Duty returns the current TCC duty cycle.
func (c *Chip) Duty() float64 { return c.duty }

// Freq returns the current chip frequency.
func (c *Chip) Freq() units.Hertz { return c.Model.PStates[c.pstate].Freq }

// Voltage returns the current chip voltage.
func (c *Chip) Voltage() float64 { return c.Model.PStates[c.pstate].Voltage }

// ProgressRate returns the rate at which a CPU-bound thread accumulates work
// on this chip, in reference-seconds per second: 1.0 at the top P-state and
// full duty. TCC modulation stalls the whole core, so duty scales progress
// directly; DVFS scales it by the frequency ratio.
func (c *Chip) ProgressRate() float64 {
	return float64(c.Freq()) / float64(c.Model.MaxFreq()) * c.duty
}

// leakage returns one core's leakage power at junction temperature t and the
// chip's current voltage, before any C-state scaling. The exponential is
// saturated at LeakCapFactor × nominal (see Model.LeakCapFactor).
func (c *Chip) leakage(t units.Celsius) units.Watts {
	m := c.Model
	vr := c.Voltage() / m.PStates[0].Voltage
	exp := c.LeakageTempCoupling * float64(t-m.LeakRefTemp) / float64(m.LeakSlope)
	l := float64(m.LeakNominal) * math.Exp(exp)
	if cap := float64(m.LeakNominal) * m.LeakCapFactor; m.LeakCapFactor > 0 && l > cap {
		l = cap
	}
	return units.Watts(l * vr * vr)
}

// fastExp computes e^x by range reduction and a degree-6 Taylor polynomial
// (relative error < 5e-8 — sub-microwatt on any leakage value). It serves
// only the tolerance-mode leap evaluations in CorePowerAndSlope; exact-mode
// entry points keep math.Exp so their outputs stay byte-identical to the
// historical kernel. Pure float arithmetic: deterministic everywhere.
func fastExp(x float64) float64 {
	const (
		log2e = 1.44269504088896338700
		ln2Hi = 6.93147180369123816490e-01
		ln2Lo = 1.90821492927058770002e-10
	)
	k := math.Round(x * log2e)
	r := (x - k*ln2Hi) - k*ln2Lo
	p := 1 + r*(1+r*(1.0/2+r*(1.0/6+r*(1.0/24+r*(1.0/120+r*(1.0/720))))))
	return math.Float64frombits(uint64(1023+int64(k))<<52) * p
}

// CorePowerAndSlope returns CorePower alongside its temperature derivative
// ∂P/∂T (W/°C), sharing the single leakage exponential of the evaluation —
// the only temperature dependence in the power model is leakage, scaled by
// the C-state's leakage factor and zeroed where the LeakCapFactor
// saturation clamps it. The thermal quiescence-leap integrator uses the
// slope to linearise heat-input drift across a leap chunk without a second
// model evaluation. The power value follows CorePower's operations with the
// leakage exponential served by fastExp, so the two entry points agree to
// better than 5e-8 relative — far inside the leap tolerance band.
func (c *Chip) CorePowerAndSlope(id int, t units.Celsius) (units.Watts, float64) {
	m := c.Model
	vr := c.Voltage() / m.PStates[0].Voltage
	exp := c.LeakageTempCoupling * float64(t-m.LeakRefTemp) / float64(m.LeakSlope)
	l := float64(m.LeakNominal) * fastExp(exp)
	capped := false
	if cap := float64(m.LeakNominal) * m.LeakCapFactor; m.LeakCapFactor > 0 && l > cap {
		l = cap
		capped = true
	}
	leak := units.Watts(l * vr * vr)
	var slope float64
	if !capped {
		slope = float64(leak) * c.LeakageTempCoupling / float64(m.LeakSlope)
	}
	cs := c.cores[id]
	switch cs.cstate {
	case C0:
		fr := float64(c.Freq()) / float64(m.MaxFreq())
		effDuty := c.duty + m.TCCResidualDyn*(1-c.duty)
		dyn := float64(m.CoreDynamicMax) * cs.powerFactor * effDuty * fr * vr * vr
		return units.Watts(dyn) + leak, slope
	case C1Halt:
		return leak + m.C1EResidual, slope
	case C1E:
		return units.Watts(float64(leak)*m.C1ELeakFactor) + m.C1EResidual, slope * m.C1ELeakFactor
	default:
		panic("cpu: unknown C-state")
	}
}

// CorePower returns the instantaneous power of core id at junction
// temperature t.
//
//   - C0: dynamic · powerFactor · duty · (f/fmax) · (V/Vmax)² plus
//     full-voltage leakage (TCC gating stops switching, not leakage).
//   - C1Halt: leakage at full voltage plus the C1E residual floor.
//   - C1E: leakage scaled by C1ELeakFactor plus the residual floor.
func (c *Chip) CorePower(id int, t units.Celsius) units.Watts {
	m := c.Model
	cs := c.cores[id]
	leak := c.leakage(t)
	switch cs.cstate {
	case C0:
		fr := float64(c.Freq()) / float64(m.MaxFreq())
		vr := c.Voltage() / m.PStates[0].Voltage
		// TCC gating saves less than its duty reduction: the clock
		// tree keeps running through gated windows.
		effDuty := c.duty + m.TCCResidualDyn*(1-c.duty)
		dyn := float64(m.CoreDynamicMax) * cs.powerFactor * effDuty * fr * vr * vr
		return units.Watts(dyn) + leak
	case C1Halt:
		return leak + m.C1EResidual
	case C1E:
		return units.Watts(float64(leak)*m.C1ELeakFactor) + m.C1EResidual
	default:
		panic("cpu: unknown C-state")
	}
}

// UncorePower returns the shared package power for the current C-states: the
// package only clocks down when every core is parked in C1E.
func (c *Chip) UncorePower() units.Watts {
	for i := range c.cores {
		if c.cores[i].cstate != C1E {
			return c.Model.UncoreActive
		}
	}
	return c.Model.UncoreAllIdle
}

// TotalPower returns the package draw for the given per-core junction
// temperatures (len must equal NumCores).
func (c *Chip) TotalPower(junctions []units.Celsius) units.Watts {
	if len(junctions) != len(c.cores) {
		panic(fmt.Sprintf("cpu: %d junction temps for %d cores", len(junctions), len(c.cores)))
	}
	total := c.UncorePower()
	for i := range c.cores {
		total += c.CorePower(i, junctions[i])
	}
	return total
}
