// Package rng provides the deterministic pseudo-random number generators used
// by every stochastic component of the simulator.
//
// Reproducibility is a hard requirement: the paper's probabilistic injection
// model produces the temperature fluctuations visible in Figure 2, and the
// evaluation harness must regenerate identical traces for identical seeds
// regardless of Go version or platform. We therefore implement our own small
// generator (splitmix64 seeding a xoshiro256**) instead of relying on
// math/rand, whose stream is not guaranteed stable across releases.
//
// Components derive independent substreams from a parent via Split, so adding
// a consumer of randomness in one subsystem never perturbs another.
package rng

import "math"

// Source is a deterministic xoshiro256** generator. The zero value is not
// usable; construct with New or Split.
type Source struct {
	s     [4]uint64
	draws *uint64
}

// splitmix64 advances the given state and returns the next output. It is used
// only to expand seeds into full generator state, as recommended by the
// xoshiro authors.
func splitmix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// New returns a Source seeded from the given value. Any seed, including zero,
// yields a valid generator.
func New(seed uint64) *Source {
	var r Source
	sm := seed
	for i := range r.s {
		r.s[i] = splitmix64(&sm)
	}
	return &r
}

// Split derives an independent child generator from r. The child's stream is
// a deterministic function of r's current state, and deriving it advances r
// exactly once, so sibling splits are themselves independent. A draw counter
// installed with Instrument is inherited by the child, so one counter
// observes an entire generator tree.
func (r *Source) Split() *Source {
	c := New(r.Uint64())
	c.draws = r.draws
	return c
}

// Instrument attaches a draw counter to r and every generator later Split
// from it: each Uint64 (and so every derived variate) increments *count. The
// batched fleet path uses a zero post-build count as proof that a machine's
// dynamics never consumed randomness, which licenses replicating its result
// across seeds. Pass nil to detach. Not safe for concurrent draws on
// generators sharing one counter; instrumented machines are stepped by a
// single goroutine.
func (r *Source) Instrument(count *uint64) { r.draws = count }

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 uniformly distributed bits.
func (r *Source) Uint64() uint64 {
	if r.draws != nil {
		*r.draws++
	}
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Float64 returns a uniform value in [0, 1) with 53 bits of precision.
func (r *Source) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bernoulli reports true with probability p. Values of p outside [0, 1] are
// clamped: p <= 0 is always false, p >= 1 always true.
func (r *Source) Bernoulli(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (r *Source) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	// Multiply-shift rejection-free mapping is fine at our scales; modulo
	// bias for n << 2^64 is far below any effect we measure.
	return int(r.Uint64() % uint64(n))
}

// NormFloat64 returns a standard normal variate (mean 0, stddev 1) using the
// Marsaglia polar method.
func (r *Source) NormFloat64() float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s > 0 && s < 1 {
			return u * math.Sqrt(-2*math.Log(s)/s)
		}
	}
}

// ExpFloat64 returns an exponentially distributed variate with rate 1
// (mean 1). Scale by the desired mean.
func (r *Source) ExpFloat64() float64 {
	for {
		u := r.Float64()
		if u > 0 {
			return -math.Log(u)
		}
	}
}

// State returns the generator's four state words — the complete internal
// state, captured for checkpointing. Restoring it with SetState resumes the
// stream at exactly the next draw.
func (r *Source) State() [4]uint64 { return r.s }

// SetState overwrites the generator's internal state with words previously
// captured by State.
func (r *Source) SetState(s [4]uint64) { r.s = s }
