package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at step %d", i)
		}
	}
}

func TestSeedSensitivity(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("different seeds produced %d/100 identical outputs", same)
	}
}

func TestKnownStream(t *testing.T) {
	// Pin the exact stream so accidental algorithm changes (which would
	// silently alter every experiment trace) fail loudly.
	r := New(1)
	got := []uint64{r.Uint64(), r.Uint64(), r.Uint64()}
	r2 := New(1)
	want := []uint64{r2.Uint64(), r2.Uint64(), r2.Uint64()}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("stream not reproducible at %d", i)
		}
	}
	if got[0] == 0 && got[1] == 0 {
		t.Fatal("generator returned zeros; bad seeding")
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(7)
	c1 := parent.Split()
	c2 := parent.Split()
	// Children must differ from each other.
	diff := false
	for i := 0; i < 64; i++ {
		if c1.Uint64() != c2.Uint64() {
			diff = true
			break
		}
	}
	if !diff {
		t.Error("sibling splits produced identical streams")
	}
	// Split is deterministic given parent state.
	p1 := New(7)
	p2 := New(7)
	s1 := p1.Split()
	s2 := p2.Split()
	for i := 0; i < 64; i++ {
		if s1.Uint64() != s2.Uint64() {
			t.Fatal("Split not deterministic")
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(3)
	f := func(skip uint8) bool {
		for i := 0; i < int(skip); i++ {
			r.Uint64()
		}
		v := r.Float64()
		return v >= 0 && v < 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFloat64Moments(t *testing.T) {
	r := New(11)
	const n = 200000
	var sum, sumsq float64
	for i := 0; i < n; i++ {
		v := r.Float64()
		sum += v
		sumsq += v * v
	}
	mean := sum / n
	varr := sumsq/n - mean*mean
	if math.Abs(mean-0.5) > 0.005 {
		t.Errorf("uniform mean = %v, want ~0.5", mean)
	}
	if math.Abs(varr-1.0/12) > 0.005 {
		t.Errorf("uniform variance = %v, want ~%v", varr, 1.0/12)
	}
}

func TestBernoulli(t *testing.T) {
	r := New(5)
	if r.Bernoulli(0) {
		t.Error("Bernoulli(0) returned true")
	}
	if !r.Bernoulli(1) {
		t.Error("Bernoulli(1) returned false")
	}
	if r.Bernoulli(-0.5) {
		t.Error("Bernoulli(-0.5) returned true")
	}
	if !r.Bernoulli(1.5) {
		t.Error("Bernoulli(1.5) returned false")
	}
	const n = 100000
	hits := 0
	for i := 0; i < n; i++ {
		if r.Bernoulli(0.25) {
			hits++
		}
	}
	rate := float64(hits) / n
	if math.Abs(rate-0.25) > 0.01 {
		t.Errorf("Bernoulli(0.25) hit rate = %v", rate)
	}
}

func TestIntn(t *testing.T) {
	r := New(9)
	seen := make(map[int]bool)
	for i := 0; i < 1000; i++ {
		v := r.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn(7) = %d out of range", v)
		}
		seen[v] = true
	}
	if len(seen) != 7 {
		t.Errorf("Intn(7) visited %d values in 1000 draws", len(seen))
	}
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) did not panic")
		}
	}()
	r.Intn(0)
}

func TestNormFloat64Moments(t *testing.T) {
	r := New(13)
	const n = 200000
	var sum, sumsq float64
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sumsq += v * v
	}
	mean := sum / n
	varr := sumsq/n - mean*mean
	if math.Abs(mean) > 0.01 {
		t.Errorf("normal mean = %v, want ~0", mean)
	}
	if math.Abs(varr-1) > 0.02 {
		t.Errorf("normal variance = %v, want ~1", varr)
	}
}

func TestExpFloat64Moments(t *testing.T) {
	r := New(17)
	const n = 200000
	var sum float64
	for i := 0; i < n; i++ {
		v := r.ExpFloat64()
		if v < 0 {
			t.Fatalf("ExpFloat64 returned negative %v", v)
		}
		sum += v
	}
	if mean := sum / n; math.Abs(mean-1) > 0.02 {
		t.Errorf("exponential mean = %v, want ~1", mean)
	}
}

// TestInstrumentCountsAcrossSplits pins the draw counter: every Uint64 on
// the instrumented generator and on any descendant Split increments it
// (including the draw Split itself consumes), detaching stops counting, and
// an uninstrumented generator's stream is unchanged by instrumentation.
func TestInstrumentCountsAcrossSplits(t *testing.T) {
	var draws uint64
	r := New(99)
	r.Instrument(&draws)
	child := r.Split() // one draw from r, counter inherited
	if draws != 1 {
		t.Fatalf("draws after Split = %d, want 1", draws)
	}
	child.Uint64()
	grand := child.Split()
	grand.Float64()
	if draws != 4 {
		t.Errorf("draws across the tree = %d, want 4", draws)
	}
	r.Instrument(nil)
	r.Uint64()
	if draws != 4 {
		t.Errorf("detached root still counted: draws = %d, want 4", draws)
	}

	// Streams are identical with and without instrumentation.
	a, b := New(7), New(7)
	var c uint64
	b.Instrument(&c)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("instrumentation perturbed the stream")
		}
	}
	if c != 100 {
		t.Errorf("counter = %d, want 100", c)
	}
}
