package smt

import (
	"testing"

	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/machine"
	"repro/internal/sched"
	"repro/internal/units"
	"repro/internal/workload"
)

// smtMachine builds a 2-context-per-core machine with eight burners and the
// given injection setup.
func smtMachine(seed uint64, p float64, l units.Time, cosched bool) (*machine.Machine, *CoScheduler) {
	cfg := machine.DefaultConfig()
	cfg.Seed = seed
	cfg.SMTContexts = 2
	m := machine.New(cfg)
	var co *CoScheduler
	if p > 0 {
		base := core.NewController(m.RNG.Split())
		if err := base.SetGlobal(core.Params{P: p, L: l}); err != nil {
			panic(err)
		}
		if cosched {
			var err error
			co, err = New(m.Sched, base, 2)
			if err != nil {
				panic(err)
			}
			m.Sched.SetInjector(co)
		} else {
			m.Sched.SetInjector(base)
		}
	}
	for i := 0; i < 8; i++ {
		m.Sched.Spawn(workload.Burn(), sched.SpawnConfig{Name: "burn", PowerFactor: 1})
	}
	return m, co
}

func TestNewValidation(t *testing.T) {
	m, _ := smtMachine(1, 0, 0, false)
	inner := core.NewController(m.RNG.Split())
	if _, err := New(nil, inner, 2); err == nil {
		t.Error("nil scheduler accepted")
	}
	if _, err := New(m.Sched, nil, 2); err == nil {
		t.Error("nil policy accepted")
	}
	if _, err := New(m.Sched, inner, 1); err == nil {
		t.Error("single-context co-scheduling accepted")
	}
}

func TestCoSchedulingGangsIdles(t *testing.T) {
	m, co := smtMachine(2, 0.5, 50*units.Millisecond, true)
	m.RunFor(30 * units.Second)
	if co.ForcedIdles == 0 {
		t.Fatal("no sibling gang idles")
	}
	// Most injection decisions should successfully idle the sibling (it
	// is running a burner almost always).
	total := co.ForcedIdles + co.MissedSiblings
	if float64(co.ForcedIdles)/float64(total) < 0.5 {
		t.Errorf("gang success %d/%d too low", co.ForcedIdles, total)
	}
}

func TestNaiveC1EShareFarBelowCoScheduled(t *testing.T) {
	// Naive injection only reaches C1E when both siblings' independent
	// quanta happen to overlap; co-scheduling aligns them by design. The
	// observed C1E share must differ accordingly.
	share := func(cosched bool) float64 {
		m, _ := smtMachine(3, 0.5, 50*units.Millisecond, cosched)
		c1e, total := 0, 0
		for i := 0; i < 3000; i++ {
			m.RunFor(10 * units.Millisecond)
			for c := 0; c < m.Chip.NumCores(); c++ {
				total++
				if m.Chip.State(c) == cpu.C1E {
					c1e++
				}
			}
		}
		return float64(c1e) / float64(total)
	}
	naive := share(false)
	co := share(true)
	if co < 2*naive {
		t.Errorf("C1E share: co-scheduled %.3f not far above naive %.3f", co, naive)
	}
	// At p=.5, L=q/2 each context idles ≈1/3 of the time: chance overlap
	// ≈11 %, aligned ≈33 %.
	if naive > 0.2 {
		t.Errorf("naive C1E share %.3f implausibly high", naive)
	}
	if co < 0.2 {
		t.Errorf("co-scheduled C1E share %.3f implausibly low", co)
	}
}

func TestCoScheduledReachesC1E(t *testing.T) {
	m, _ := smtMachine(4, 0.5, 50*units.Millisecond, true)
	sawC1E := false
	for i := 0; i < 3000 && !sawC1E; i++ {
		m.RunFor(10 * units.Millisecond)
		for c := 0; c < m.Chip.NumCores(); c++ {
			if m.Chip.State(c) == cpu.C1E {
				sawC1E = true
			}
		}
	}
	if !sawC1E {
		t.Error("co-scheduled injection never reached C1E")
	}
}

func TestCoSchedulingCoolsMoreThanNaive(t *testing.T) {
	run := func(cosched bool) float64 {
		m, _ := smtMachine(5, 0.5, 50*units.Millisecond, cosched)
		m.RunFor(60 * units.Second)
		i0 := m.MeanJunctionIntegral()
		t0 := m.Now()
		m.RunFor(20 * units.Second)
		return (m.MeanJunctionIntegral() - i0) / (m.Now() - t0).Seconds()
	}
	naive := run(false)
	co := run(true)
	if co >= naive {
		t.Errorf("co-scheduling (%.2fC) not cooler than naive (%.2fC)", co, naive)
	}
	// The gap should be substantial: C1E vs halt plus the gang factor.
	if naive-co < 1.0 {
		t.Errorf("co-scheduling benefit only %.2fC", naive-co)
	}
}

func TestDisabledDegradesToNaive(t *testing.T) {
	m, co := smtMachine(6, 0.5, 50*units.Millisecond, true)
	// Spawn-time dispatches may have ganged a couple of idles already;
	// after disabling, the count must freeze.
	co.Enabled = false
	before := co.ForcedIdles
	m.RunFor(30 * units.Second)
	if co.ForcedIdles != before {
		t.Errorf("disabled co-scheduler forced %d more idles", co.ForcedIdles-before)
	}
}

func TestKernelSiblingNotForced(t *testing.T) {
	// A sibling running a kernel thread must not be force-idled.
	cfg := machine.DefaultConfig()
	cfg.Seed = 7
	cfg.SMTContexts = 2
	m := machine.New(cfg)
	base := core.NewController(m.RNG.Split())
	if err := base.SetGlobal(core.Params{P: 0.9, L: 50 * units.Millisecond}); err != nil {
		t.Fatal(err)
	}
	co, err := New(m.Sched, base, 2)
	if err != nil {
		t.Fatal(err)
	}
	m.Sched.SetInjector(co)
	// One user burner per context pair plus a kernel spinner.
	kern := m.Sched.Spawn(workload.Burn(), sched.SpawnConfig{
		Name: "kburn", Kernel: true, Priority: sched.PriorityKernel,
	})
	for i := 0; i < 7; i++ {
		m.Sched.Spawn(workload.Burn(), sched.SpawnConfig{Name: "burn", PowerFactor: 1})
	}
	m.RunFor(30 * units.Second)
	if kern.Injections != 0 {
		t.Errorf("kernel thread was force-idled %d times", kern.Injections)
	}
}
