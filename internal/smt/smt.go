// Package smt implements idle-quantum co-scheduling for simultaneous
// multithreading — the extension the paper identifies but defers (§3.2: "In
// order to cause the entire core to enter the C1E low power state we need to
// halt all thread contexts on the core. This is feasible but requires
// additional care in co-scheduling idle quanta").
//
// With SMT enabled, a naive per-context Dimetrodon policy almost never idles
// both sibling contexts simultaneously: the core stays in C0 (or at best a
// full-voltage halt) during injected quanta, the voltage never drops, and the
// injection buys little cooling for its throughput cost. The CoScheduler
// wraps any base injection policy and, whenever it fires on one context,
// force-idles the sibling contexts of the same physical core for the same
// window — ganging the idle quanta so the whole core reaches C1E.
package smt

import (
	"fmt"

	"repro/internal/sched"
	"repro/internal/units"
)

// CoScheduler wraps a base injection policy with sibling gang-idling. It
// implements sched.Injector.
type CoScheduler struct {
	// Inner is the underlying per-thread policy (typically a
	// core.Controller).
	Inner sched.Injector
	// Sched is the scheduler whose contexts are being managed.
	Sched *sched.Scheduler
	// ContextsPerCore is the SMT width (machine.Config.SMTContexts).
	ContextsPerCore int
	// Enabled toggles co-scheduling; false degrades to the naive
	// per-context policy (the comparison baseline).
	Enabled bool

	// ForcedIdles counts sibling contexts successfully gang-idled.
	ForcedIdles int
	// MissedSiblings counts injection decisions whose sibling could not
	// be idled (kernel thread or already idle).
	MissedSiblings int
}

// New returns a co-scheduler over the given scheduler and base policy.
func New(s *sched.Scheduler, inner sched.Injector, contextsPerCore int) (*CoScheduler, error) {
	if s == nil || inner == nil {
		return nil, fmt.Errorf("smt: nil scheduler or policy")
	}
	if contextsPerCore < 2 {
		return nil, fmt.Errorf("smt: co-scheduling needs >=2 contexts per core, got %d", contextsPerCore)
	}
	return &CoScheduler{Inner: inner, Sched: s, ContextsPerCore: contextsPerCore, Enabled: true}, nil
}

// Decide implements sched.Injector: delegate to the base policy and, on
// injection, align every sibling context's idle window with this one.
func (c *CoScheduler) Decide(t *sched.Thread, coreID int, now units.Time) (units.Time, bool) {
	idle, ok := c.Inner.Decide(t, coreID, now)
	if !ok || !c.Enabled {
		return idle, ok
	}
	base := coreID - coreID%c.ContextsPerCore
	for sib := base; sib < base+c.ContextsPerCore; sib++ {
		if sib == coreID {
			continue
		}
		if c.Sched.ForceIdle(sib, idle) {
			c.ForcedIdles++
		} else {
			c.MissedSiblings++
		}
	}
	return idle, ok
}
