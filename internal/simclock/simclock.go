// Package simclock provides the virtual clock and event queue at the heart of
// the discrete-event simulator.
//
// Simulated components never consult wall time: the clock only advances when
// the event loop pops the next scheduled event. Events at equal timestamps
// fire in the order they were scheduled (a stable tie-break on a sequence
// number), which keeps runs deterministic.
package simclock

import (
	"container/heap"
	"fmt"

	"repro/internal/units"
)

// Event is a callback scheduled to fire at a point in virtual time. The
// callback receives the firing time.
type Event struct {
	At     units.Time
	Fire   func(now units.Time)
	Label  string // for debugging and trace output
	seq    uint64
	index  int // heap index; -1 once popped or cancelled
	cancel bool
}

// Cancelled reports whether the event was cancelled before firing.
func (e *Event) Cancelled() bool { return e.cancel }

// Clock is a virtual clock with a pending-event queue. The zero value is
// ready to use and starts at time zero.
type Clock struct {
	now    units.Time
	queue  eventHeap
	nexts  uint64
	fired  uint64
	popped bool // guards against re-entrant Advance
}

// Now returns the current virtual time.
func (c *Clock) Now() units.Time { return c.now }

// Fired returns the number of events that have fired so far (cancelled events
// are not counted). Useful for loop bounds in tests.
func (c *Clock) Fired() uint64 { return c.fired }

// Pending returns the number of events still queued (including cancelled
// events not yet reaped).
func (c *Clock) Pending() int { return len(c.queue) }

// Schedule enqueues fn to fire at absolute time at. Scheduling in the past
// (before Now) panics: it would silently reorder causality.
func (c *Clock) Schedule(at units.Time, label string, fn func(now units.Time)) *Event {
	if at < c.now {
		panic(fmt.Sprintf("simclock: schedule %q at %v before now %v", label, at, c.now))
	}
	e := &Event{At: at, Fire: fn, Label: label, seq: c.nexts}
	c.nexts++
	heap.Push(&c.queue, e)
	return e
}

// ScheduleAfter enqueues fn to fire after delay dt from now.
func (c *Clock) ScheduleAfter(dt units.Time, label string, fn func(now units.Time)) *Event {
	if dt < 0 {
		panic(fmt.Sprintf("simclock: negative delay %v for %q", dt, label))
	}
	return c.Schedule(c.now+dt, label, fn)
}

// Cancel marks the event so it will be discarded instead of fired. Cancelling
// an already-fired or already-cancelled event is a no-op.
func (c *Clock) Cancel(e *Event) {
	if e == nil || e.cancel || e.index < 0 {
		e.markCancelled()
		return
	}
	e.cancel = true
}

func (e *Event) markCancelled() {
	if e != nil {
		e.cancel = true
	}
}

// PeekTime returns the firing time of the earliest pending (non-cancelled)
// event, and false if the queue is empty. Cancelled events at the head are
// reaped as a side effect.
func (c *Clock) PeekTime() (units.Time, bool) {
	for len(c.queue) > 0 {
		head := c.queue[0]
		if head.cancel {
			heap.Pop(&c.queue)
			continue
		}
		return head.At, true
	}
	return 0, false
}

// Step pops and fires the next event, advancing the clock to its timestamp.
// It reports false when the queue is empty. A callback may schedule further
// events, including at the current instant.
func (c *Clock) Step() bool {
	for len(c.queue) > 0 {
		e := heap.Pop(&c.queue).(*Event)
		if e.cancel {
			continue
		}
		c.now = e.At
		c.fired++
		e.Fire(c.now)
		return true
	}
	return false
}

// AdvanceTo runs events up to and including time t, then sets the clock to t.
// The hook, if non-nil, is invoked before each event fires with the span
// (from, to) the clock is about to jump across; it is how the machine layer
// integrates continuous state (thermal, energy) between discrete events.
func (c *Clock) AdvanceTo(t units.Time, hook func(from, to units.Time)) {
	if t < c.now {
		panic(fmt.Sprintf("simclock: AdvanceTo %v before now %v", t, c.now))
	}
	if c.popped {
		panic("simclock: re-entrant AdvanceTo")
	}
	c.popped = true
	defer func() { c.popped = false }()
	for {
		at, ok := c.PeekTime()
		if !ok || at > t {
			break
		}
		if hook != nil && at > c.now {
			hook(c.now, at)
		}
		c.Step()
	}
	if hook != nil && t > c.now {
		hook(c.now, t)
	}
	c.now = t
}

// eventHeap implements container/heap ordered by (time, sequence).
type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].At != h[j].At {
		return h[i].At < h[j].At
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	e := x.(*Event)
	e.index = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*h = old[:n-1]
	return e
}
