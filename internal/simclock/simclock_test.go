package simclock

import (
	"testing"

	"repro/internal/units"
)

func TestScheduleAndStep(t *testing.T) {
	var c Clock
	var fired []string
	c.Schedule(2*units.Second, "b", func(now units.Time) {
		if now != 2*units.Second {
			t.Errorf("b fired at %v", now)
		}
		fired = append(fired, "b")
	})
	c.Schedule(units.Second, "a", func(units.Time) { fired = append(fired, "a") })
	for c.Step() {
	}
	if len(fired) != 2 || fired[0] != "a" || fired[1] != "b" {
		t.Errorf("fired order = %v", fired)
	}
	if c.Now() != 2*units.Second {
		t.Errorf("clock at %v after drain", c.Now())
	}
	if c.Fired() != 2 {
		t.Errorf("Fired() = %d", c.Fired())
	}
}

func TestSameTimeFIFO(t *testing.T) {
	var c Clock
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		c.Schedule(units.Second, "e", func(units.Time) { order = append(order, i) })
	}
	for c.Step() {
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("same-time events fired out of order: %v", order)
		}
	}
}

func TestCancel(t *testing.T) {
	var c Clock
	fired := false
	e := c.Schedule(units.Second, "x", func(units.Time) { fired = true })
	c.Cancel(e)
	for c.Step() {
	}
	if fired {
		t.Error("cancelled event fired")
	}
	if !e.Cancelled() {
		t.Error("event not marked cancelled")
	}
	c.Cancel(e) // idempotent
	c.Cancel(nil)
}

func TestSchedulePastPanics(t *testing.T) {
	var c Clock
	c.Schedule(units.Second, "a", func(units.Time) {})
	c.Step()
	defer func() {
		if recover() == nil {
			t.Error("scheduling in the past did not panic")
		}
	}()
	c.Schedule(500*units.Millisecond, "late", func(units.Time) {})
}

func TestNegativeDelayPanics(t *testing.T) {
	var c Clock
	defer func() {
		if recover() == nil {
			t.Error("negative delay did not panic")
		}
	}()
	c.ScheduleAfter(-units.Second, "neg", func(units.Time) {})
}

func TestEventsScheduledDuringFire(t *testing.T) {
	var c Clock
	var log []string
	c.Schedule(units.Second, "outer", func(now units.Time) {
		log = append(log, "outer")
		c.Schedule(now, "inner-now", func(units.Time) { log = append(log, "inner") })
		c.ScheduleAfter(units.Second, "later", func(units.Time) { log = append(log, "later") })
	})
	for c.Step() {
	}
	want := []string{"outer", "inner", "later"}
	if len(log) != len(want) {
		t.Fatalf("log = %v", log)
	}
	for i := range want {
		if log[i] != want[i] {
			t.Fatalf("log = %v, want %v", log, want)
		}
	}
}

func TestAdvanceToHookSpans(t *testing.T) {
	var c Clock
	c.Schedule(units.Second, "a", func(units.Time) {})
	c.Schedule(3*units.Second, "b", func(units.Time) {})
	var spans []units.Time
	var total units.Time
	c.AdvanceTo(5*units.Second, func(from, to units.Time) {
		if to <= from {
			t.Errorf("bad span %v..%v", from, to)
		}
		spans = append(spans, to-from)
		total += to - from
	})
	if total != 5*units.Second {
		t.Errorf("hook covered %v of 5s", total)
	}
	if c.Now() != 5*units.Second {
		t.Errorf("clock at %v", c.Now())
	}
	if len(spans) != 3 { // 0→1, 1→3, 3→5
		t.Errorf("spans = %v", spans)
	}
}

func TestAdvanceToNoEvents(t *testing.T) {
	var c Clock
	called := false
	c.AdvanceTo(units.Second, func(from, to units.Time) {
		called = true
		if from != 0 || to != units.Second {
			t.Errorf("span %v..%v", from, to)
		}
	})
	if !called {
		t.Error("hook not called for event-free span")
	}
}

func TestAdvanceToBackwardsPanics(t *testing.T) {
	var c Clock
	c.AdvanceTo(units.Second, nil)
	defer func() {
		if recover() == nil {
			t.Error("backwards AdvanceTo did not panic")
		}
	}()
	c.AdvanceTo(500*units.Millisecond, nil)
}

func TestPeekTimeReapsCancelled(t *testing.T) {
	var c Clock
	e := c.Schedule(units.Second, "x", func(units.Time) {})
	c.Schedule(2*units.Second, "y", func(units.Time) {})
	c.Cancel(e)
	at, ok := c.PeekTime()
	if !ok || at != 2*units.Second {
		t.Errorf("PeekTime = %v, %v", at, ok)
	}
}

func TestStepEmpty(t *testing.T) {
	var c Clock
	if c.Step() {
		t.Error("Step on empty queue returned true")
	}
	if c.Pending() != 0 {
		t.Error("Pending != 0 on empty clock")
	}
}
