package obs

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Metric types, used in `# TYPE` exposition lines and pinned by the golden
// exposition test.
const (
	TypeCounter   = "counter"
	TypeGauge     = "gauge"
	TypeHistogram = "histogram"
)

// Registry is an ordered set of metrics rendered as one Prometheus text
// exposition document. Registration order is render order — dashboards see a
// stable document layout — and names are unique (a duplicate registration
// panics, because two owners of one series is a programming error).
type Registry struct {
	mu      sync.Mutex
	metrics []metric
	names   map[string]bool
}

// metric is anything the registry can render.
type metric interface {
	// meta returns the metric's name, help string and exposition type.
	meta() (name, help, typ string)
	// writeValue appends the sample line(s) — everything after the # HELP /
	// # TYPE preamble.
	writeValue(b *strings.Builder)
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{names: map[string]bool{}}
}

func (r *Registry) register(m metric) {
	name, _, _ := m.meta()
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.names[name] {
		panic(fmt.Sprintf("obs: metric %q registered twice", name))
	}
	r.names[name] = true
	r.metrics = append(r.metrics, m)
}

// Counter registers a monotonically increasing int64 counter.
func (r *Registry) Counter(name, help string) *Counter {
	c := &Counter{name: name, help: help}
	r.register(c)
	return c
}

// Gauge registers a gauge whose value is read at render time from fn.
// Values render through %v, so integral floats print without a decimal
// point — byte-stable with the hand-rolled exposition this registry
// replaced.
func (r *Registry) Gauge(name, help string, fn func() float64) *Gauge {
	g := &Gauge{name: name, help: help, fn: fn}
	r.register(g)
	return g
}

// CounterFunc registers a counter whose value is read at render time from fn
// — for counts owned by another structure (the result cache's hit/miss
// atomics) that should not move behind two owners.
func (r *Registry) CounterFunc(name, help string, fn func() int64) {
	r.register(&funcCounter{name: name, help: help, fn: fn})
}

// Text registers a metric of the given exposition type whose rendered value
// is produced verbatim by fn — the escape hatch for values with pinned
// formatting (the daemon's "%.6f" second accumulators).
func (r *Registry) Text(name, help, typ string, fn func() string) {
	r.register(&textMetric{name: name, help: help, typ: typ, fn: fn})
}

// Histogram registers a fixed-bucket histogram. Buckets are upper bounds in
// ascending order; the +Inf bucket is implicit. A nil buckets slice selects
// DefBuckets.
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	if buckets == nil {
		buckets = DefBuckets
	}
	for i := 1; i < len(buckets); i++ {
		if buckets[i] <= buckets[i-1] {
			panic(fmt.Sprintf("obs: histogram %q buckets not ascending", name))
		}
	}
	h := &Histogram{name: name, help: help, bounds: buckets, counts: make([]atomic.Int64, len(buckets)+1)}
	r.register(h)
	return h
}

// Collect registers a free-form collector rendered after every registered
// metric — the seam for dynamically keyed series like the phase profiler's
// per-phase accumulators. The collector must emit complete, well-formed
// exposition lines (including its own # HELP/# TYPE preamble).
func (r *Registry) Collect(fn func(b *strings.Builder)) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.metrics = append(r.metrics, collectorMetric(fn))
}

// LabeledSample is one sample of a labeled series: `name{labelKey="Label"} Value`.
type LabeledSample struct {
	Label string
	Value float64
}

// Labeled registers a dynamically keyed labeled series — one # HELP/# TYPE
// preamble, then one sample line per entry fn returns at render time, in fn's
// order (callers emit a stable order so scrapes diff cleanly). It rides the
// Collect slot, so like any collector it renders after the fixed metrics and
// stays out of Names() — golden name lists don't churn when label sets do.
func (r *Registry) Labeled(name, help, typ, labelKey string, fn func() []LabeledSample) {
	r.Collect(func(b *strings.Builder) {
		samples := fn()
		if len(samples) == 0 {
			return
		}
		fmt.Fprintf(b, "# HELP %s %s\n", name, help)
		fmt.Fprintf(b, "# TYPE %s %s\n", name, typ)
		for _, s := range samples {
			fmt.Fprintf(b, "%s{%s=%q} %v\n", name, labelKey, s.Label, s.Value)
		}
	})
}

// Render writes the exposition document.
func (r *Registry) Render(b *strings.Builder) {
	r.mu.Lock()
	metrics := append([]metric(nil), r.metrics...)
	r.mu.Unlock()
	for _, m := range metrics {
		if c, ok := m.(collectorMetric); ok {
			c(b)
			continue
		}
		name, help, typ := m.meta()
		fmt.Fprintf(b, "# HELP %s %s\n", name, help)
		fmt.Fprintf(b, "# TYPE %s %s\n", name, typ)
		m.writeValue(b)
	}
}

// Names returns the registered metric names with their exposition types, in
// render order — what the golden exposition test pins.
func (r *Registry) Names() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []string
	for _, m := range r.metrics {
		if _, ok := m.(collectorMetric); ok {
			continue
		}
		name, _, typ := m.meta()
		out = append(out, name+" "+typ)
	}
	return out
}

// collectorMetric adapts a render function to the metric slot.
type collectorMetric func(b *strings.Builder)

func (collectorMetric) meta() (string, string, string) { return "", "", "" }
func (collectorMetric) writeValue(b *strings.Builder)  {}

// Counter is a monotonically increasing int64. Store exists for boot-time
// initialisation from recovered state (the WAL replay count); it must not be
// used to move a live counter backwards.
type Counter struct {
	name, help string
	v          atomic.Int64
}

func (c *Counter) Add(n int64)   { c.v.Add(n) }
func (c *Counter) Inc()          { c.v.Add(1) }
func (c *Counter) Store(n int64) { c.v.Store(n) }
func (c *Counter) Load() int64   { return c.v.Load() }

func (c *Counter) meta() (string, string, string) { return c.name, c.help, TypeCounter }
func (c *Counter) writeValue(b *strings.Builder) {
	b.WriteString(c.name)
	b.WriteByte(' ')
	b.WriteString(strconv.FormatInt(c.v.Load(), 10))
	b.WriteByte('\n')
}

// Gauge reads its value at render time.
type Gauge struct {
	name, help string
	fn         func() float64
}

func (g *Gauge) meta() (string, string, string) { return g.name, g.help, TypeGauge }
func (g *Gauge) writeValue(b *strings.Builder) {
	fmt.Fprintf(b, "%s %v\n", g.name, g.fn())
}

type textMetric struct {
	name, help, typ string
	fn              func() string
}

func (g *textMetric) meta() (string, string, string) { return g.name, g.help, g.typ }
func (g *textMetric) writeValue(b *strings.Builder) {
	fmt.Fprintf(b, "%s %s\n", g.name, g.fn())
}

type funcCounter struct {
	name, help string
	fn         func() int64
}

func (c *funcCounter) meta() (string, string, string) { return c.name, c.help, TypeCounter }
func (c *funcCounter) writeValue(b *strings.Builder) {
	fmt.Fprintf(b, "%s %d\n", c.name, c.fn())
}

// DefBuckets spans microsecond fsyncs to multi-second fleet runs — one fixed
// set for every daemon latency histogram, so percentile queries line up
// across series.
var DefBuckets = []float64{
	1e-6, 2.5e-6, 5e-6, 1e-5, 2.5e-5, 5e-5, 1e-4, 2.5e-4, 5e-4,
	1e-3, 2.5e-3, 5e-3, 1e-2, 2.5e-2, 5e-2, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// Histogram is a fixed-bucket histogram of float64 observations (seconds, by
// daemon convention). Observations are lock-free: one atomic add on the
// owning bucket plus a CAS loop folding the sum.
type Histogram struct {
	name, help string
	bounds     []float64      // ascending upper bounds; +Inf implicit
	counts     []atomic.Int64 // len(bounds)+1; last is +Inf
	sumBits    atomic.Uint64  // Float64bits of the observation sum
}

// Observe records one observation.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	for {
		old := h.sumBits.Load()
		new := floatBits(floatFrom(old) + v)
		if h.sumBits.CompareAndSwap(old, new) {
			return
		}
	}
}

// Count returns the total number of observations.
func (h *Histogram) Count() int64 {
	var n int64
	for i := range h.counts {
		n += h.counts[i].Load()
	}
	return n
}

// Sum returns the sum of all observations.
func (h *Histogram) Sum() float64 { return floatFrom(h.sumBits.Load()) }

// Quantile estimates the q-quantile (0..1) by linear interpolation within
// the owning bucket — the same estimate a PromQL histogram_quantile gives.
// Returns 0 for an empty histogram.
func (h *Histogram) Quantile(q float64) float64 {
	total := h.Count()
	if total == 0 {
		return 0
	}
	rank := q * float64(total)
	var cum int64
	for i := range h.counts {
		inBucket := h.counts[i].Load()
		prev := cum
		cum += inBucket
		if float64(cum) < rank {
			continue
		}
		if i == len(h.bounds) { // +Inf bucket: clamp to the last finite bound
			return h.bounds[len(h.bounds)-1]
		}
		lo := 0.0
		if i > 0 {
			lo = h.bounds[i-1]
		}
		width := h.bounds[i] - lo
		if inBucket == 0 {
			return h.bounds[i]
		}
		return lo + width*(rank-float64(prev))/float64(inBucket)
	}
	return h.bounds[len(h.bounds)-1]
}

func (h *Histogram) meta() (string, string, string) { return h.name, h.help, TypeHistogram }
func (h *Histogram) writeValue(b *strings.Builder) {
	var cum int64
	for i, bound := range h.bounds {
		cum += h.counts[i].Load()
		fmt.Fprintf(b, "%s_bucket{le=%q} %d\n", h.name, formatBound(bound), cum)
	}
	cum += h.counts[len(h.bounds)].Load()
	fmt.Fprintf(b, "%s_bucket{le=\"+Inf\"} %d\n", h.name, cum)
	fmt.Fprintf(b, "%s_sum %s\n", h.name, strconv.FormatFloat(h.Sum(), 'g', -1, 64))
	fmt.Fprintf(b, "%s_count %d\n", h.name, cum)
}

func formatBound(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

func floatBits(f float64) uint64 { return math.Float64bits(f) }
func floatFrom(b uint64) float64 { return math.Float64frombits(b) }
