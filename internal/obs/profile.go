package obs

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// The phase profiler: named monotonic-clock accumulators wrapped around the
// simulation hot path's coarse phases — the metric-tick step loop, leap
// propagator ladder builds, the Kahan fleet aggregation. Phases are
// process-wide (registered once, accumulated from any goroutine) because the
// hot path they instrument is fanned across the runner pool.
//
// Cost discipline: instrumented code calls Phase.Start, which is a single
// atomic load when profiling is disabled (the overwhelming default) and one
// time.Now() when enabled. Nothing sits inside the per-step thermal kernel —
// accumulators wrap the tick loop around it — so kernel benchmarks see zero
// overhead either way.

var profEnabled atomic.Bool

var phaseReg = struct {
	sync.Mutex
	byName map[string]*Phase
	order  []*Phase
}{byName: map[string]*Phase{}}

// Phase is one named accumulator: total nanoseconds and entry count.
type Phase struct {
	name  string
	ns    atomic.Int64
	count atomic.Int64
}

// RegisterPhase returns the process-wide phase accumulator with the given
// name, creating it on first use. Intended for package-level vars at the
// instrumentation sites.
func RegisterPhase(name string) *Phase {
	phaseReg.Lock()
	defer phaseReg.Unlock()
	if p, ok := phaseReg.byName[name]; ok {
		return p
	}
	p := &Phase{name: name}
	phaseReg.byName[name] = p
	phaseReg.order = append(phaseReg.order, p)
	return p
}

// EnableProfiling turns the phase profiler on or off process-wide.
func EnableProfiling(on bool) { profEnabled.Store(on) }

// ProfilingEnabled reports the profiler state.
func ProfilingEnabled() bool { return profEnabled.Load() }

// Start begins timing one phase entry. It returns the zero time when
// profiling is disabled; Stop on a zero time is a no-op, so call sites need
// no branches of their own.
func (p *Phase) Start() time.Time {
	if !profEnabled.Load() {
		return time.Time{}
	}
	return time.Now()
}

// Stop accumulates the time since t0 as one phase entry.
func (p *Phase) Stop(t0 time.Time) { p.StopN(t0, 1) }

// StopN accumulates the time since t0 as n phase entries — for loops that
// time a whole batch with one clock-read pair.
func (p *Phase) StopN(t0 time.Time, n int64) {
	if t0.IsZero() {
		return
	}
	p.ns.Add(int64(time.Since(t0)))
	p.count.Add(n)
}

// PhaseStat is one phase's accumulated totals.
type PhaseStat struct {
	Name  string
	NS    int64
	Count int64
}

// PerCallNS returns the mean nanoseconds per counted entry (0 if none).
func (s PhaseStat) PerCallNS() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.NS) / float64(s.Count)
}

// ProfileSnapshot returns every registered phase's totals, sorted by name.
// Phases with no entries are included — a reader can distinguish "never ran"
// from "not instrumented".
func ProfileSnapshot() []PhaseStat {
	phaseReg.Lock()
	phases := append([]*Phase(nil), phaseReg.order...)
	phaseReg.Unlock()
	out := make([]PhaseStat, 0, len(phases))
	for _, p := range phases {
		out = append(out, PhaseStat{Name: p.name, NS: p.ns.Load(), Count: p.count.Load()})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// ResetProfile zeroes every registered phase accumulator.
func ResetProfile() {
	phaseReg.Lock()
	phases := append([]*Phase(nil), phaseReg.order...)
	phaseReg.Unlock()
	for _, p := range phases {
		p.ns.Store(0)
		p.count.Store(0)
	}
}

// ProfileReport renders the snapshot as an aligned text table — what `dimctl`
// and dimd's logs print after a profiled run.
func ProfileReport() string {
	stats := ProfileSnapshot()
	var b strings.Builder
	fmt.Fprintf(&b, "%-28s %14s %12s %14s\n", "phase", "total_ms", "count", "ns/call")
	for _, s := range stats {
		if s.Count == 0 && s.NS == 0 {
			continue
		}
		fmt.Fprintf(&b, "%-28s %14.3f %12d %14.1f\n",
			s.Name, float64(s.NS)/1e6, s.Count, s.PerCallNS())
	}
	return b.String()
}

// CollectPhases renders the profiler as Prometheus exposition lines
// (dimd_phase_seconds_total / dimd_phase_calls_total, labelled by phase) —
// registered as a Registry collector by the daemon. Nothing is emitted while
// profiling is disabled or before any phase has accumulated, so the default
// exposition document stays pinned to its golden.
func CollectPhases(b *strings.Builder) {
	if !profEnabled.Load() {
		return
	}
	stats := ProfileSnapshot()
	any := false
	for _, s := range stats {
		if s.Count > 0 || s.NS > 0 {
			any = true
			break
		}
	}
	if !any {
		return
	}
	b.WriteString("# HELP dimd_phase_seconds_total wall seconds accumulated per profiled phase\n")
	b.WriteString("# TYPE dimd_phase_seconds_total counter\n")
	for _, s := range stats {
		if s.Count == 0 && s.NS == 0 {
			continue
		}
		fmt.Fprintf(b, "dimd_phase_seconds_total{phase=%q} %.9f\n", s.Name, float64(s.NS)/1e9)
	}
	b.WriteString("# HELP dimd_phase_calls_total entries accumulated per profiled phase\n")
	b.WriteString("# TYPE dimd_phase_calls_total counter\n")
	for _, s := range stats {
		if s.Count == 0 && s.NS == 0 {
			continue
		}
		fmt.Fprintf(b, "dimd_phase_calls_total{phase=%q} %d\n", s.Name, s.Count)
	}
}
