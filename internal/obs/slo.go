package obs

import (
	"sort"
	"sync"
)

// CountAbove returns the number of observations that landed in buckets lying
// entirely above threshold — observations v with v > bound for every bound
// <= threshold. It is the bucket-resolution approximation of "observations
// exceeding the SLO threshold": pick thresholds on bucket boundaries (the
// DefBuckets decades) for an exact count.
func (h *Histogram) CountAbove(threshold float64) int64 {
	// Buckets are (bounds[i-1], bounds[i]]; bucket i is entirely above the
	// threshold when its lower bound >= threshold. SearchFloat64s finds the
	// first bucket whose upper bound >= threshold; that bucket may straddle
	// the threshold (undercounting is the conservative direction for an SLO
	// evaluator), so counting starts one past it.
	i := sort.SearchFloat64s(h.bounds, threshold) + 1
	var n int64
	for ; i < len(h.counts); i++ {
		n += h.counts[i].Load()
	}
	return n
}

// BurnRate evaluates an error-budget burn over a histogram: the fraction of
// new observations (since the previous Check) exceeding Threshold, compared
// against the budget. It is the SLO evaluator behind the flight recorder's
// auto-dump — cheap enough to run at every job completion, stateful enough
// to fire once per breach episode instead of once per bad observation.
type BurnRate struct {
	// Name labels the rule in incident reasons ("slo:queue-wait").
	Name string
	// H is the histogram under watch.
	H *Histogram
	// Threshold is the per-observation SLO bound (seconds for latency
	// histograms, violation-seconds for thermal ones).
	Threshold float64
	// Budget is the tolerated bad fraction per evaluation window (0.1 =
	// 10% of observations may exceed Threshold).
	Budget float64
	// MinEvents gates evaluation: fewer than this many new observations
	// since the last Check and the window carries over un-judged.
	MinEvents int64

	mu        sync.Mutex
	lastTotal int64
	lastBad   int64
	breached  bool
}

// Check evaluates the window since the previous firing evaluation. fire is
// true exactly once per breach episode: when the bad fraction first exceeds
// Budget; the rule re-arms after a compliant window. rate is the bad
// fraction over the evaluated window and events the window's size.
func (b *BurnRate) Check() (fire bool, rate float64, events int64) {
	if b == nil || b.H == nil {
		return false, 0, 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	total := b.H.Count()
	bad := b.H.CountAbove(b.Threshold)
	events = total - b.lastTotal
	if events < b.MinEvents {
		return false, 0, events
	}
	dBad := bad - b.lastBad
	b.lastTotal, b.lastBad = total, bad
	if events > 0 {
		rate = float64(dBad) / float64(events)
	}
	over := rate > b.Budget
	fire = over && !b.breached
	b.breached = over
	return fire, rate, events
}
