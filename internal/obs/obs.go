// Package obs is the stack's observability layer: a metrics registry
// (counters, gauges, fixed-bucket histograms) with Prometheus text
// exposition, span-based tracing exportable as Chrome trace-event JSON, and
// a phase profiler of cheap monotonic-clock accumulators for the simulation
// hot path.
//
// The package-wide contract, load-bearing for the whole repository, is
// NON-PERTURBATION: nothing in this package ever touches simulation state.
// Every instrument reads only the wall clock and values the instrumented
// code already computed on its silent path — never a thermal flush, an
// energy read, or any other measurement the unobserved run would not
// perform. Enabling all of it therefore leaves every golden, scenario and
// batched export byte-identical to the disabled path; the equivalence suite
// in internal/scenario pins exactly that.
//
// Disabled-cost matters as much: the profiler's fast path is one atomic
// load, a nil *Tracer no-ops every span call, and no instrument sits inside
// the thermal step kernel itself (instrumentation wraps the metric-tick
// loop around it), so the hot step loop's benchmarks are unaffected.
package obs
