package obs

import (
	"encoding/json"
	"sync"
	"time"
)

// Tracer records spans for one traced unit of work (the daemon creates one
// per job) and exports them as Chrome trace-event JSON, loadable in
// chrome://tracing or Perfetto. All methods are safe on a nil *Tracer —
// every call no-ops — so engines thread a tracer unconditionally and untraced
// runs pay only a nil check.
//
// Spans are bounded: past maxSpans further Start calls record nothing but
// count as dropped, so a million-machine fleet cannot balloon a job's trace.
// Span timings come from the wall clock alone; a tracer never reads or
// perturbs simulation state.
type Tracer struct {
	mu      sync.Mutex
	t0      time.Time
	spans   []span
	max     int
	dropped int
	sink    SpanSink
}

type span struct {
	name    string
	cat     string
	pid     int // 0 renders as the coordinator's pid 1; >0 names a remote process track
	tid     int
	phase   byte // 'X' complete, 'i' instant
	startNS int64
	durNS   int64
	args    map[string]any
}

// SpanSink observes completed spans and instants (durNS 0) as they are
// recorded — the flight recorder's tap. It runs outside the tracer's lock
// and must be cheap and non-blocking.
type SpanSink func(name, cat string, durNS int64)

// DefaultMaxSpans bounds one tracer's retained spans.
const DefaultMaxSpans = 8192

// NewTracer returns a tracer with the default span bound.
func NewTracer() *Tracer {
	return &Tracer{t0: time.Now(), max: DefaultMaxSpans}
}

// Span is an in-flight span handle; End (or EndArgs) completes it. The zero
// value (from a nil tracer or an exhausted span budget) no-ops on End.
type Span struct {
	t     *Tracer
	name  string
	cat   string
	tid   int
	start time.Time
}

// Start opens a span. cat groups spans in the trace viewer ("lifecycle",
// "scenario", "sched", "machine"); tid picks the horizontal track (0 for the
// job's main track, a machine index for per-machine tracks).
func (t *Tracer) Start(name, cat string, tid int) Span {
	if t == nil {
		return Span{}
	}
	return Span{t: t, name: name, cat: cat, tid: tid, start: time.Now()}
}

// End completes the span.
func (s Span) End() { s.EndArgs(nil) }

// EndArgs completes the span with key/value annotations shown in the trace
// viewer's detail pane.
func (s Span) EndArgs(args map[string]any) {
	if s.t == nil {
		return
	}
	dur := time.Since(s.start)
	s.t.add(span{
		name: s.name, cat: s.cat, tid: s.tid, phase: 'X',
		startNS: s.start.Sub(s.t.t0).Nanoseconds(), durNS: dur.Nanoseconds(),
		args: args,
	})
}

// Instant records a zero-duration marker event.
func (t *Tracer) Instant(name, cat string, tid int) {
	if t == nil {
		return
	}
	t.add(span{name: name, cat: cat, tid: tid, phase: 'i',
		startNS: time.Since(t.t0).Nanoseconds()})
}

func (t *Tracer) add(s span) {
	t.mu.Lock()
	if len(t.spans) >= t.max {
		t.dropped++
		t.mu.Unlock()
		return
	}
	t.spans = append(t.spans, s)
	sink := t.sink
	t.mu.Unlock()
	if sink != nil {
		sink(s.name, s.cat, s.durNS)
	}
}

// SetSink installs (or clears, with nil) the tracer's span observer. Safe on
// a nil tracer.
func (t *Tracer) SetSink(fn SpanSink) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.sink = fn
	t.mu.Unlock()
}

// Len returns the number of retained spans; Dropped how many the bound shed.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.spans)
}

// Dropped returns how many spans the retention bound shed.
func (t *Tracer) Dropped() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// chromeEvent is one element of the Chrome trace-event JSON array.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	TS   float64        `json:"ts"`            // microseconds since trace start
	Dur  float64        `json:"dur,omitempty"` // microseconds ('X' events)
	Args map[string]any `json:"args,omitempty"`
}

// chromeTrace is the JSON-object flavour of the trace-event format, which
// both chrome://tracing and Perfetto load.
type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// ChromeTrace renders the retained spans as Chrome trace-event JSON. It is
// safe to call while spans are still being recorded — the export is a
// snapshot.
func (t *Tracer) ChromeTrace() ([]byte, error) {
	if t == nil {
		return json.Marshal(chromeTrace{TraceEvents: []chromeEvent{}, DisplayTimeUnit: "ms"})
	}
	t.mu.Lock()
	spans := append([]span(nil), t.spans...)
	t.mu.Unlock()
	out := chromeTrace{TraceEvents: make([]chromeEvent, 0, len(spans)), DisplayTimeUnit: "ms"}
	for _, s := range spans {
		pid := s.pid
		if pid == 0 {
			pid = 1
		}
		out.TraceEvents = append(out.TraceEvents, chromeEvent{
			Name: s.name, Cat: s.cat, Ph: string(s.phase), PID: pid, TID: s.tid,
			TS:   float64(s.startNS) / 1e3,
			Dur:  float64(s.durNS) / 1e3,
			Args: s.args,
		})
	}
	return json.Marshal(out)
}

// SpanRecord is one span in wire form: what a worker ships back alongside
// its shard results so the coordinator can stitch a cluster-wide trace.
// Timestamps are nanoseconds relative to the exporting tracer's start.
type SpanRecord struct {
	Name    string         `json:"name"`
	Cat     string         `json:"cat,omitempty"`
	Ph      string         `json:"ph"` // "X" or "i"
	TID     int            `json:"tid"`
	StartNS int64          `json:"start_ns"`
	DurNS   int64          `json:"dur_ns,omitempty"`
	Args    map[string]any `json:"args,omitempty"`
}

// Records exports the retained spans in wire form, ordered as recorded. Safe
// on nil (returns nil).
func (t *Tracer) Records() []SpanRecord {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]SpanRecord, 0, len(t.spans))
	for _, s := range t.spans {
		out = append(out, SpanRecord{
			Name: s.name, Cat: s.cat, Ph: string(s.phase), TID: s.tid,
			StartNS: s.startNS, DurNS: s.durNS, Args: s.args,
		})
	}
	return out
}

// Import stitches spans exported by a remote tracer into this one under
// process track pid (>= 2; the importing tracer's own spans render as pid
// 1). at is the local wall-clock instant corresponding to the remote
// tracer's start — typically captured just before the dispatch that created
// it — so remote timestamps land on this tracer's timeline. Imported spans
// count against the span bound like local ones. Safe on a nil tracer.
func (t *Tracer) Import(recs []SpanRecord, pid int, at time.Time) {
	if t == nil || len(recs) == 0 {
		return
	}
	base := at.Sub(t.t0).Nanoseconds()
	if base < 0 {
		base = 0
	}
	for _, r := range recs {
		ph := byte('X')
		if r.Ph == "i" {
			ph = 'i'
		}
		t.add(span{
			name: r.Name, cat: r.Cat, pid: pid, tid: r.TID, phase: ph,
			startNS: base + r.StartNS, durNS: r.DurNS, args: r.Args,
		})
	}
}
