package obs

import (
	"encoding/json"
	"sync"
	"time"
)

// Tracer records spans for one traced unit of work (the daemon creates one
// per job) and exports them as Chrome trace-event JSON, loadable in
// chrome://tracing or Perfetto. All methods are safe on a nil *Tracer —
// every call no-ops — so engines thread a tracer unconditionally and untraced
// runs pay only a nil check.
//
// Spans are bounded: past maxSpans further Start calls record nothing but
// count as dropped, so a million-machine fleet cannot balloon a job's trace.
// Span timings come from the wall clock alone; a tracer never reads or
// perturbs simulation state.
type Tracer struct {
	mu      sync.Mutex
	t0      time.Time
	spans   []span
	max     int
	dropped int
}

type span struct {
	name    string
	cat     string
	tid     int
	phase   byte // 'X' complete, 'i' instant
	startNS int64
	durNS   int64
	args    map[string]any
}

// DefaultMaxSpans bounds one tracer's retained spans.
const DefaultMaxSpans = 8192

// NewTracer returns a tracer with the default span bound.
func NewTracer() *Tracer {
	return &Tracer{t0: time.Now(), max: DefaultMaxSpans}
}

// Span is an in-flight span handle; End (or EndArgs) completes it. The zero
// value (from a nil tracer or an exhausted span budget) no-ops on End.
type Span struct {
	t     *Tracer
	name  string
	cat   string
	tid   int
	start time.Time
}

// Start opens a span. cat groups spans in the trace viewer ("lifecycle",
// "scenario", "sched", "machine"); tid picks the horizontal track (0 for the
// job's main track, a machine index for per-machine tracks).
func (t *Tracer) Start(name, cat string, tid int) Span {
	if t == nil {
		return Span{}
	}
	return Span{t: t, name: name, cat: cat, tid: tid, start: time.Now()}
}

// End completes the span.
func (s Span) End() { s.EndArgs(nil) }

// EndArgs completes the span with key/value annotations shown in the trace
// viewer's detail pane.
func (s Span) EndArgs(args map[string]any) {
	if s.t == nil {
		return
	}
	dur := time.Since(s.start)
	s.t.add(span{
		name: s.name, cat: s.cat, tid: s.tid, phase: 'X',
		startNS: s.start.Sub(s.t.t0).Nanoseconds(), durNS: dur.Nanoseconds(),
		args: args,
	})
}

// Instant records a zero-duration marker event.
func (t *Tracer) Instant(name, cat string, tid int) {
	if t == nil {
		return
	}
	t.add(span{name: name, cat: cat, tid: tid, phase: 'i',
		startNS: time.Since(t.t0).Nanoseconds()})
}

func (t *Tracer) add(s span) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.spans) >= t.max {
		t.dropped++
		return
	}
	t.spans = append(t.spans, s)
}

// Len returns the number of retained spans; Dropped how many the bound shed.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.spans)
}

// Dropped returns how many spans the retention bound shed.
func (t *Tracer) Dropped() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// chromeEvent is one element of the Chrome trace-event JSON array.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	TS   float64        `json:"ts"`            // microseconds since trace start
	Dur  float64        `json:"dur,omitempty"` // microseconds ('X' events)
	Args map[string]any `json:"args,omitempty"`
}

// chromeTrace is the JSON-object flavour of the trace-event format, which
// both chrome://tracing and Perfetto load.
type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// ChromeTrace renders the retained spans as Chrome trace-event JSON. It is
// safe to call while spans are still being recorded — the export is a
// snapshot.
func (t *Tracer) ChromeTrace() ([]byte, error) {
	if t == nil {
		return json.Marshal(chromeTrace{TraceEvents: []chromeEvent{}, DisplayTimeUnit: "ms"})
	}
	t.mu.Lock()
	spans := append([]span(nil), t.spans...)
	t.mu.Unlock()
	out := chromeTrace{TraceEvents: make([]chromeEvent, 0, len(spans)), DisplayTimeUnit: "ms"}
	for _, s := range spans {
		out.TraceEvents = append(out.TraceEvents, chromeEvent{
			Name: s.name, Cat: s.cat, Ph: string(s.phase), PID: 1, TID: s.tid,
			TS:   float64(s.startNS) / 1e3,
			Dur:  float64(s.durNS) / 1e3,
			Args: s.args,
		})
	}
	return json.Marshal(out)
}
