package obs

import (
	"sync"
	"time"
)

// DefaultFlightRecords is the default ring capacity: enough to hold the last
// few seconds of a busy fleet's spans, stream events and heat frames without
// the ring itself becoming a memory hazard.
const DefaultFlightRecords = 4096

// FlightRecord is one entry in the flight recorder: a compact, pre-digested
// observation (a completed span, a stream event, a heat-map frame) tagged
// with the monotonic instant it was recorded.
type FlightRecord struct {
	// Seq is the record's position in the recorder's total history; the ring
	// keeps only the newest records, so Seq of the oldest surviving record
	// reveals how many were overwritten.
	Seq int64 `json:"seq"`
	// AtNS is nanoseconds since the recorder started.
	AtNS int64 `json:"at_ns"`
	// Kind classifies the record: "span", "stream", "heat", "slo", ...
	Kind string `json:"kind"`
	// Job is the owning job ID, when the observation is job-scoped.
	Job string `json:"job,omitempty"`
	// Name is the record's label: span name, stream event type, heat key.
	Name string `json:"name,omitempty"`
	// Value carries the record's one number: span duration (seconds), stream
	// sequence, heat peak °C, SLO burn rate.
	Value float64 `json:"value"`
}

// FlightRecorder is a bounded, allocation-stable ring of recent
// observations — the black box an incident dump reads back. The write path
// assigns into a preallocated slot and allocates nothing: record strings are
// retained by reference and no formatting happens under the lock, so
// recording is cheap enough to hang off every stream append and span
// completion without perturbing the hot path.
//
// A nil *FlightRecorder is a valid no-op recorder, mirroring the nil-safe
// Tracer: code records unconditionally and the disabled cost is one nil
// check.
type FlightRecorder struct {
	mu   sync.Mutex
	t0   time.Time
	buf  []FlightRecord
	next int64 // total records ever written; buf[next%len(buf)] is the next slot
}

// NewFlightRecorder builds a recorder with capacity n (clamped to at least
// 16; n <= 0 selects DefaultFlightRecords). The ring is fully preallocated.
func NewFlightRecorder(n int) *FlightRecorder {
	if n <= 0 {
		n = DefaultFlightRecords
	}
	if n < 16 {
		n = 16
	}
	return &FlightRecorder{t0: time.Now(), buf: make([]FlightRecord, n)}
}

// Record appends one observation, overwriting the oldest when the ring is
// full. Safe on a nil recorder.
func (r *FlightRecorder) Record(kind, job, name string, value float64) {
	if r == nil {
		return
	}
	at := time.Since(r.t0).Nanoseconds()
	r.mu.Lock()
	slot := &r.buf[r.next%int64(len(r.buf))]
	slot.Seq = r.next
	slot.AtNS = at
	slot.Kind = kind
	slot.Job = job
	slot.Name = name
	slot.Value = value
	r.next++
	r.mu.Unlock()
}

// Snapshot returns the surviving records oldest-first. Safe on nil (returns
// nil).
func (r *FlightRecorder) Snapshot() []FlightRecord {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	n := int64(len(r.buf))
	start := r.next - n
	if start < 0 {
		start = 0
	}
	out := make([]FlightRecord, 0, r.next-start)
	for s := start; s < r.next; s++ {
		out = append(out, r.buf[s%n])
	}
	return out
}

// Len returns how many records the ring currently holds.
func (r *FlightRecorder) Len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.next < int64(len(r.buf)) {
		return int(r.next)
	}
	return len(r.buf)
}

// Total returns how many records were ever written (Total - Len were
// overwritten).
func (r *FlightRecorder) Total() int64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.next
}

// Cap returns the ring capacity.
func (r *FlightRecorder) Cap() int {
	if r == nil {
		return 0
	}
	return len(r.buf)
}
