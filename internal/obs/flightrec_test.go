package obs

import (
	"encoding/json"
	"testing"
	"time"
)

func TestFlightRecorderWrap(t *testing.T) {
	r := NewFlightRecorder(16)
	if r.Cap() != 16 {
		t.Fatalf("cap = %d, want 16", r.Cap())
	}
	for i := 0; i < 10; i++ {
		r.Record("span", "job-1", "s", float64(i))
	}
	if r.Len() != 10 || r.Total() != 10 {
		t.Fatalf("len=%d total=%d, want 10/10", r.Len(), r.Total())
	}
	snap := r.Snapshot()
	if len(snap) != 10 || snap[0].Seq != 0 || snap[9].Value != 9 {
		t.Fatalf("pre-wrap snapshot wrong: %+v", snap)
	}

	// Overflow: 40 total records through a 16-slot ring keeps the newest 16.
	for i := 10; i < 40; i++ {
		r.Record("span", "job-1", "s", float64(i))
	}
	if r.Len() != 16 || r.Total() != 40 {
		t.Fatalf("len=%d total=%d, want 16/40", r.Len(), r.Total())
	}
	snap = r.Snapshot()
	if len(snap) != 16 {
		t.Fatalf("post-wrap snapshot len = %d, want 16", len(snap))
	}
	for i, rec := range snap {
		wantSeq := int64(24 + i) // oldest surviving = total - cap
		if rec.Seq != wantSeq || rec.Value != float64(wantSeq) {
			t.Fatalf("snapshot[%d] = seq %d value %g, want seq %d", i, rec.Seq, rec.Value, wantSeq)
		}
		if i > 0 && rec.AtNS < snap[i-1].AtNS {
			t.Fatalf("snapshot out of time order at %d", i)
		}
	}
}

func TestFlightRecorderNilAndClamp(t *testing.T) {
	var r *FlightRecorder
	r.Record("span", "", "", 0) // must not panic
	if r.Snapshot() != nil || r.Len() != 0 || r.Total() != 0 || r.Cap() != 0 {
		t.Fatal("nil recorder must be a zero-valued no-op")
	}
	if got := NewFlightRecorder(0).Cap(); got != DefaultFlightRecords {
		t.Fatalf("default cap = %d, want %d", got, DefaultFlightRecords)
	}
	if got := NewFlightRecorder(3).Cap(); got != 16 {
		t.Fatalf("clamped cap = %d, want 16", got)
	}
}

// TestFlightRecorderAllocStable pins the "allocation-stable" contract: once
// the ring is built, recording allocates nothing — strings land by reference
// into preallocated slots.
func TestFlightRecorderAllocStable(t *testing.T) {
	r := NewFlightRecorder(64)
	allocs := testing.AllocsPerRun(1000, func() {
		r.Record("stream", "job-7", "telemetry", 42.5)
	})
	if allocs != 0 {
		t.Fatalf("Record allocates %v objects per call, want 0", allocs)
	}
}

func TestCountAbove(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("t_seconds", "test", []float64{0.001, 0.01, 0.1, 1})
	for _, v := range []float64{0.0005, 0.005, 0.05, 0.5, 5} {
		h.Observe(v)
	}
	cases := []struct {
		threshold float64
		want      int64
	}{
		// Threshold on a bucket boundary counts observations in buckets whose
		// lower bound >= threshold — i.e. everything strictly above it.
		{0.001, 4}, // 0.005, 0.05, 0.5, 5
		{0.01, 3},  // 0.05, 0.5, 5
		{1, 1},     // 5
		{10, 0},
	}
	for _, c := range cases {
		if got := h.CountAbove(c.threshold); got != c.want {
			t.Errorf("CountAbove(%g) = %d, want %d", c.threshold, got, c.want)
		}
	}
}

func TestBurnRate(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("w_seconds", "test", []float64{0.001, 0.01, 0.1, 1})
	b := &BurnRate{Name: "test", H: h, Threshold: 0.01, Budget: 0.25, MinEvents: 4}

	// Too few events: no evaluation.
	h.Observe(5)
	if fire, _, _ := b.Check(); fire {
		t.Fatal("fired under MinEvents")
	}

	// A bad window: 3 of 4 above threshold — fires once.
	h.Observe(5)
	h.Observe(2)
	h.Observe(0.0001)
	fire, rate, events := b.Check()
	if !fire || events != 4 {
		t.Fatalf("want fire on bad window, got fire=%v rate=%g events=%d", fire, rate, events)
	}
	if rate != 0.75 {
		t.Fatalf("rate = %g, want 0.75", rate)
	}

	// Still breached: latched, no re-fire.
	for i := 0; i < 4; i++ {
		h.Observe(5)
	}
	if fire, _, _ := b.Check(); fire {
		t.Fatal("re-fired while still breached")
	}

	// A compliant window re-arms...
	for i := 0; i < 4; i++ {
		h.Observe(0.0001)
	}
	if fire, rate, _ := b.Check(); fire || rate != 0 {
		t.Fatalf("compliant window: fire=%v rate=%g", fire, rate)
	}
	// ...so the next breach fires again.
	for i := 0; i < 4; i++ {
		h.Observe(5)
	}
	if fire, _, _ := b.Check(); !fire {
		t.Fatal("did not re-fire after re-arm")
	}

	// Nil safety.
	var nilB *BurnRate
	if fire, _, _ := nilB.Check(); fire {
		t.Fatal("nil BurnRate fired")
	}
}

func TestTracerRecordsAndImport(t *testing.T) {
	remote := NewTracer()
	sp := remote.Start("shard.run", "shard", 3)
	time.Sleep(time.Millisecond)
	sp.EndArgs(map[string]any{"machines": 8})
	remote.Instant("shard.done", "shard", 3)

	recs := remote.Records()
	if len(recs) != 2 {
		t.Fatalf("records = %d, want 2", len(recs))
	}
	if recs[0].Name != "shard.run" || recs[0].Ph != "X" || recs[0].DurNS <= 0 {
		t.Fatalf("bad complete record: %+v", recs[0])
	}
	if recs[1].Ph != "i" {
		t.Fatalf("bad instant record: %+v", recs[1])
	}

	local := NewTracer()
	local.Instant("submitted", "lifecycle", 0)
	local.Import(recs, 2, time.Now())
	if local.Len() != 3 {
		t.Fatalf("after import len = %d, want 3", local.Len())
	}

	raw, err := local.ChromeTrace()
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			PID  int     `json:"pid"`
			TS   float64 `json:"ts"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("trace JSON invalid: %v", err)
	}
	pids := map[int]int{}
	for _, e := range doc.TraceEvents {
		pids[e.PID]++
		if e.TS < 0 {
			t.Fatalf("negative timestamp on %q", e.Name)
		}
	}
	if pids[1] != 1 || pids[2] != 2 {
		t.Fatalf("pid partition = %v, want {1:1, 2:2}", pids)
	}

	// Nil tracer: both directions no-op.
	var nilT *Tracer
	if nilT.Records() != nil {
		t.Fatal("nil Records")
	}
	nilT.Import(recs, 2, time.Now())
}

func TestTracerSink(t *testing.T) {
	tr := NewTracer()
	var names []string
	tr.SetSink(func(name, cat string, durNS int64) { names = append(names, cat+":"+name) })
	tr.Start("run", "lifecycle", 0).End()
	tr.Instant("done", "lifecycle", 0)
	if len(names) != 2 || names[0] != "lifecycle:run" || names[1] != "lifecycle:done" {
		t.Fatalf("sink saw %v", names)
	}
	var nilT *Tracer
	nilT.SetSink(func(string, string, int64) {}) // must not panic
}
