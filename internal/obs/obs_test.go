package obs

import (
	"encoding/json"
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestRegistryRenderOrderAndFormat(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("t_jobs_total", "jobs")
	c.Add(3)
	r.Gauge("t_depth", "depth", func() float64 { return 7 })
	r.Text("t_seconds", "secs", TypeGauge, func() string { return "1.500000" })
	r.CounterFunc("t_hits_total", "hits", func() int64 { return 11 })

	var b strings.Builder
	r.Render(&b)
	want := "# HELP t_jobs_total jobs\n" +
		"# TYPE t_jobs_total counter\n" +
		"t_jobs_total 3\n" +
		"# HELP t_depth depth\n" +
		"# TYPE t_depth gauge\n" +
		"t_depth 7\n" +
		"# HELP t_seconds secs\n" +
		"# TYPE t_seconds gauge\n" +
		"t_seconds 1.500000\n" +
		"# HELP t_hits_total hits\n" +
		"# TYPE t_hits_total counter\n" +
		"t_hits_total 11\n"
	if b.String() != want {
		t.Fatalf("render mismatch:\ngot:\n%s\nwant:\n%s", b.String(), want)
	}
	names := r.Names()
	wantNames := []string{"t_jobs_total counter", "t_depth gauge", "t_seconds gauge", "t_hits_total counter"}
	for i, n := range wantNames {
		if names[i] != n {
			t.Fatalf("Names()[%d] = %q, want %q", i, names[i], n)
		}
	}
}

func TestRegistryDuplicatePanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("dup", "x")
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration did not panic")
		}
	}()
	r.Counter("dup", "y")
}

func TestHistogramBucketsAndQuantiles(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("t_lat_seconds", "latency", []float64{0.001, 0.01, 0.1, 1})
	for i := 0; i < 90; i++ {
		h.Observe(0.005) // (0.001, 0.01] bucket
	}
	for i := 0; i < 10; i++ {
		h.Observe(0.5) // (0.1, 1] bucket
	}
	if got := h.Count(); got != 100 {
		t.Fatalf("Count = %d, want 100", got)
	}
	if got, want := h.Sum(), 90*0.005+10*0.5; math.Abs(got-want) > 1e-9 {
		t.Fatalf("Sum = %v, want %v", got, want)
	}
	// p50 interpolates inside the (0.001, 0.01] bucket; p99 inside (0.1, 1].
	if q := h.Quantile(0.5); q < 0.001 || q > 0.01 {
		t.Fatalf("p50 = %v, want within (0.001, 0.01]", q)
	}
	if q := h.Quantile(0.99); q < 0.1 || q > 1 {
		t.Fatalf("p99 = %v, want within (0.1, 1]", q)
	}

	var b strings.Builder
	r.Render(&b)
	doc := b.String()
	for _, line := range []string{
		"# TYPE t_lat_seconds histogram",
		`t_lat_seconds_bucket{le="0.001"} 0`,
		`t_lat_seconds_bucket{le="0.01"} 90`,
		`t_lat_seconds_bucket{le="0.1"} 90`,
		`t_lat_seconds_bucket{le="1"} 100`,
		`t_lat_seconds_bucket{le="+Inf"} 100`,
		"t_lat_seconds_count 100",
	} {
		if !strings.Contains(doc, line) {
			t.Fatalf("exposition missing %q:\n%s", line, doc)
		}
	}
}

func TestHistogramOutOfRangeGoesToInf(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("t_inf_seconds", "x", []float64{0.001})
	h.Observe(5)
	var b strings.Builder
	r.Render(&b)
	if !strings.Contains(b.String(), `t_inf_seconds_bucket{le="+Inf"} 1`) {
		t.Fatalf("+Inf bucket missing:\n%s", b.String())
	}
	if !strings.Contains(b.String(), `t_inf_seconds_bucket{le="0.001"} 0`) {
		t.Fatalf("finite bucket should be empty:\n%s", b.String())
	}
}

func TestTracerChromeTrace(t *testing.T) {
	tr := NewTracer()
	s := tr.Start("run", "lifecycle", 0)
	time.Sleep(time.Millisecond)
	s.EndArgs(map[string]any{"machines": 4})
	tr.Instant("done", "lifecycle", 0)

	raw, err := tr.ChromeTrace()
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Cat  string  `json:"cat"`
			Ph   string  `json:"ph"`
			PID  int     `json:"pid"`
			TID  int     `json:"tid"`
			TS   float64 `json:"ts"`
			Dur  float64 `json:"dur"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("ChromeTrace is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) != 2 {
		t.Fatalf("got %d events, want 2", len(doc.TraceEvents))
	}
	x := doc.TraceEvents[0]
	if x.Name != "run" || x.Ph != "X" || x.Dur < 900 { // >= ~1ms in µs
		t.Fatalf("complete event malformed: %+v", x)
	}
	if doc.TraceEvents[1].Ph != "i" {
		t.Fatalf("instant event malformed: %+v", doc.TraceEvents[1])
	}
}

func TestNilTracerNoops(t *testing.T) {
	var tr *Tracer
	s := tr.Start("x", "y", 0)
	s.End()
	s.EndArgs(map[string]any{"a": 1})
	tr.Instant("x", "y", 0)
	if tr.Len() != 0 || tr.Dropped() != 0 {
		t.Fatal("nil tracer should report zero")
	}
	if _, err := tr.ChromeTrace(); err != nil {
		t.Fatal(err)
	}
}

func TestTracerSpanBound(t *testing.T) {
	tr := NewTracer()
	tr.max = 4
	for i := 0; i < 10; i++ {
		tr.Start("s", "c", 0).End()
	}
	if tr.Len() != 4 {
		t.Fatalf("Len = %d, want 4", tr.Len())
	}
	if tr.Dropped() != 6 {
		t.Fatalf("Dropped = %d, want 6", tr.Dropped())
	}
}

func TestPhaseProfiler(t *testing.T) {
	ResetProfile()
	p := RegisterPhase("test.phase")
	if p != RegisterPhase("test.phase") {
		t.Fatal("RegisterPhase is not idempotent")
	}

	// Disabled: Start returns the zero time and Stop accumulates nothing.
	EnableProfiling(false)
	p.Stop(p.Start())
	for _, s := range ProfileSnapshot() {
		if s.Name == "test.phase" && (s.Count != 0 || s.NS != 0) {
			t.Fatalf("disabled profiler accumulated: %+v", s)
		}
	}

	EnableProfiling(true)
	defer EnableProfiling(false)
	t0 := p.Start()
	time.Sleep(time.Millisecond)
	p.StopN(t0, 3)
	found := false
	for _, s := range ProfileSnapshot() {
		if s.Name != "test.phase" {
			continue
		}
		found = true
		if s.Count != 3 || s.NS <= 0 {
			t.Fatalf("bad stat: %+v", s)
		}
		if s.PerCallNS() <= 0 {
			t.Fatalf("PerCallNS = %v", s.PerCallNS())
		}
	}
	if !found {
		t.Fatal("phase missing from snapshot")
	}
	if !strings.Contains(ProfileReport(), "test.phase") {
		t.Fatal("ProfileReport missing phase")
	}

	var b strings.Builder
	CollectPhases(&b)
	if !strings.Contains(b.String(), `dimd_phase_seconds_total{phase="test.phase"}`) {
		t.Fatalf("CollectPhases missing phase:\n%s", b.String())
	}

	// Off again: the collector must emit nothing, keeping the default
	// /metrics document golden-stable.
	EnableProfiling(false)
	b.Reset()
	CollectPhases(&b)
	if b.Len() != 0 {
		t.Fatalf("CollectPhases emitted while disabled:\n%s", b.String())
	}
}

// TestConcurrentObservability is the 64-lane race pass over every obs
// primitive: counters, histogram observes, gauge renders, span recording,
// trace export, and profiler accumulation all concurrent. Run with -race in
// CI.
func TestConcurrentObservability(t *testing.T) {
	const lanes = 64
	r := NewRegistry()
	c := r.Counter("race_total", "x")
	h := r.Histogram("race_seconds", "x", nil)
	r.Gauge("race_depth", "x", func() float64 { return float64(c.Load()) })
	tr := NewTracer()
	EnableProfiling(true)
	defer EnableProfiling(false)
	p := RegisterPhase("race.phase")

	var wg sync.WaitGroup
	for i := 0; i < lanes; i++ {
		wg.Add(1)
		go func(lane int) {
			defer wg.Done()
			for k := 0; k < 200; k++ {
				c.Inc()
				h.Observe(float64(k) * 1e-6)
				s := tr.Start("work", "race", lane)
				p.Stop(p.Start())
				s.End()
				if k%50 == 0 {
					var b strings.Builder
					r.Render(&b)
					if _, err := tr.ChromeTrace(); err != nil {
						t.Error(err)
					}
					_ = ProfileSnapshot()
				}
			}
		}(i)
	}
	wg.Wait()
	if c.Load() != lanes*200 {
		t.Fatalf("counter = %d, want %d", c.Load(), lanes*200)
	}
	if h.Count() != lanes*200 {
		t.Fatalf("histogram count = %d, want %d", h.Count(), lanes*200)
	}
	if tr.Len()+tr.Dropped() != lanes*200 {
		t.Fatalf("spans+dropped = %d, want %d", tr.Len()+tr.Dropped(), lanes*200)
	}
}

// BenchmarkPhaseDisabled pins the profiler's disabled fast path — one atomic
// load — the cost every instrumented tick pays when profiling is off.
func BenchmarkPhaseDisabled(b *testing.B) {
	EnableProfiling(false)
	p := RegisterPhase("bench.disabled")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p.Stop(p.Start())
	}
}

// BenchmarkPhaseEnabled measures the enabled cost (two clock reads + two
// atomic adds) — what a profiled metric tick pays.
func BenchmarkPhaseEnabled(b *testing.B) {
	EnableProfiling(true)
	defer EnableProfiling(false)
	p := RegisterPhase("bench.enabled")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p.Stop(p.Start())
	}
}

// BenchmarkHistogramObserve pins the histogram hot path.
func BenchmarkHistogramObserve(b *testing.B) {
	r := NewRegistry()
	h := r.Histogram("bench_seconds", "x", nil)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(1e-4)
	}
}

func TestRegistryLabeledSeries(t *testing.T) {
	r := NewRegistry()
	r.Counter("t_fixed_total", "fixed").Inc()
	samples := []LabeledSample{
		{Label: "http://w1:8080", Value: 1},
		{Label: "http://w2:8080", Value: 0},
	}
	r.Labeled("t_worker_up", "per-worker health", TypeGauge, "worker", func() []LabeledSample {
		return samples
	})

	var b strings.Builder
	r.Render(&b)
	want := "# HELP t_fixed_total fixed\n" +
		"# TYPE t_fixed_total counter\n" +
		"t_fixed_total 1\n" +
		"# HELP t_worker_up per-worker health\n" +
		"# TYPE t_worker_up gauge\n" +
		"t_worker_up{worker=\"http://w1:8080\"} 1\n" +
		"t_worker_up{worker=\"http://w2:8080\"} 0\n"
	if b.String() != want {
		t.Fatalf("render mismatch:\ngot:\n%s\nwant:\n%s", b.String(), want)
	}

	// Labeled series stay out of Names() — golden name lists must not churn
	// with dynamic label sets.
	for _, n := range r.Names() {
		if strings.Contains(n, "t_worker_up") {
			t.Fatalf("labeled series leaked into Names(): %v", r.Names())
		}
	}

	// An empty sample set renders nothing, not a bare preamble.
	samples = nil
	b.Reset()
	r.Render(&b)
	if strings.Contains(b.String(), "t_worker_up") {
		t.Fatal("empty labeled series still rendered its preamble")
	}
}
