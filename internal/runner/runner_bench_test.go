package runner

import (
	"fmt"
	"testing"
)

// busyTrial is a small deterministic compute kernel standing in for a
// simulation trial.
func busyTrial(i, n int) float64 {
	acc := float64(i)
	for k := 0; k < n; k++ {
		acc += float64(k%7) * 1e-3
	}
	return acc
}

// BenchmarkRunnerFanout measures sweep dispatch at several pool sizes. Each
// iteration fans 64 trials of ~50µs out across the pool; on a multi-core
// runner the jobs>1 variants approach linear scaling, while on a single
// hardware thread they bound the coordination overhead.
func BenchmarkRunnerFanout(b *testing.B) {
	specs := make([]int, 64)
	for i := range specs {
		specs[i] = 100_000
	}
	for _, jobs := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("jobs=%d", jobs), func(b *testing.B) {
			SetJobs(jobs)
			defer SetJobs(0)
			for i := 0; i < b.N; i++ {
				Map(specs, busyTrial)
			}
		})
	}
}

// BenchmarkRunnerOverhead isolates the per-trial dispatch cost with empty
// trial bodies.
func BenchmarkRunnerOverhead(b *testing.B) {
	specs := make([]int, 1024)
	SetJobs(8)
	defer SetJobs(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Map(specs, func(i, _ int) int { return i })
	}
}
