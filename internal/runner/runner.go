// Package runner is the deterministic trial-sweep engine behind every
// experiment harness: it fans a slice of independent trial specifications out
// across a worker pool and returns the results in submission order.
//
// Determinism is the load-bearing property. The paper's evaluation is
// reproduced by sweeps of self-contained simulations — each trial builds its
// own machine from an explicit seed derived from the trial's identity (never
// drawn from a shared RNG stream) — so executing them concurrently cannot
// perturb any result, and collecting results by submission index makes the
// rendered output byte-identical at any parallelism level. The regression
// test in internal/experiments pins exactly that: -jobs 1 and -jobs 8 must
// render the same bytes.
//
// The pool size defaults to GOMAXPROCS and is overridden globally via
// SetJobs, which cmd/dimctl wires to its -jobs flag.
package runner

import (
	"context"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
)

// jobs holds the configured pool size; 0 selects GOMAXPROCS.
var jobs atomic.Int64

// SetJobs sets the worker-pool size used by subsequent Map calls. n <= 0
// restores the default (GOMAXPROCS at the time of the sweep).
func SetJobs(n int) {
	if n < 0 {
		n = 0
	}
	jobs.Store(int64(n))
}

// Jobs returns the effective worker-pool size.
func Jobs() int {
	if j := jobs.Load(); j > 0 {
		return int(j)
	}
	return runtime.GOMAXPROCS(0)
}

// TrialPanic carries a panic out of a worker so Map can re-raise it on the
// calling goroutine with the trial index, the original panic value, and the
// failing trial's stack trace attached.
type TrialPanic struct {
	Index int
	Value any
	Stack []byte
}

// Error formats the panic with the originating trial's stack, which would
// otherwise be lost when the panic crosses the worker boundary.
func (p *TrialPanic) Error() string {
	return fmt.Sprintf("runner: trial %d panicked: %v\n%s", p.Index, p.Value, p.Stack)
}

// mapCore is the shared fan-out engine behind Map, MapCtx, MapErr and
// MapErrCtx. It executes fn(i, specs[i]) across the worker pool with
// early-abort semantics: the first trial error, trial panic, or context
// cancellation stops workers from claiming further trials (trials already in
// flight run to completion — a simulation mid-step has no safe interruption
// point). Results of completed error-free trials are always filled.
//
// Failure reporting is deterministic where it can be: among the trials that
// actually ran, the lowest-index panic wins over any error, and the
// lowest-index error is the one returned. (Which trials run after an abort
// depends on scheduling; on the success path, output remains byte-identical
// at any parallelism level.) Context cancellation surfaces as ctx.Err().
func mapCore[S, R any](ctx context.Context, specs []S, fn func(i int, spec S) (R, error)) ([]R, error) {
	n := len(specs)
	res := make([]R, n)
	workers := Jobs()
	if workers > n {
		workers = n
	}

	var (
		aborted  atomic.Bool
		errMu    sync.Mutex
		firstErr error
		errIdx   int
		panicked *TrialPanic
	)
	recordErr := func(i int, err error) {
		errMu.Lock()
		if firstErr == nil || i < errIdx {
			firstErr, errIdx = err, i
		}
		errMu.Unlock()
		aborted.Store(true)
	}
	runOne := func(i int) {
		defer func() {
			if r := recover(); r != nil {
				tp := &TrialPanic{Index: i, Value: r, Stack: debug.Stack()}
				errMu.Lock()
				if panicked == nil || i < panicked.Index {
					panicked = tp
				}
				errMu.Unlock()
				aborted.Store(true)
			}
		}()
		r, err := fn(i, specs[i])
		if err != nil {
			recordErr(i, fmt.Errorf("runner: trial %d: %w", i, err))
			return
		}
		res[i] = r
	}
	claimable := func() bool {
		if aborted.Load() {
			return false
		}
		if ctx != nil {
			select {
			case <-ctx.Done():
				return false
			default:
			}
		}
		return true
	}

	if workers <= 1 {
		for i := range specs {
			if !claimable() {
				break
			}
			runOne(i)
		}
	} else {
		var (
			next atomic.Int64
			wg   sync.WaitGroup
		)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for claimable() {
					i := int(next.Add(1)) - 1
					if i >= n {
						return
					}
					runOne(i)
				}
			}()
		}
		wg.Wait()
	}

	if panicked != nil {
		panic(panicked)
	}
	if firstErr != nil {
		return res, firstErr
	}
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return res, fmt.Errorf("runner: sweep cancelled: %w", err)
		}
	}
	return res, nil
}

// Map executes fn(i, specs[i]) for every spec across the worker pool and
// returns the results indexed exactly like specs. fn must be self-contained:
// it may read shared immutable data (the baseline result, the grid) but must
// derive all stochastic state from the spec itself.
//
// If any trial panics, workers stop claiming further trials and Map re-panics
// on the caller's goroutine after all in-flight trials have drained, raising
// the panic of the lowest trial index that ran.
func Map[S, R any](specs []S, fn func(i int, spec S) R) []R {
	res, _ := mapCore(nil, specs, func(i int, s S) (R, error) {
		return fn(i, s), nil
	})
	return res
}

// MapCtx is Map under a context: cancellation stops workers from claiming
// further trials and surfaces as a non-nil error. Trials already in flight
// run to completion (a trial is a pure simulation with no blocking points to
// interrupt); results of trials completed before the cancellation are filled.
func MapCtx[S, R any](ctx context.Context, specs []S, fn func(i int, spec S) R) ([]R, error) {
	return mapCore(ctx, specs, func(i int, s S) (R, error) {
		return fn(i, s), nil
	})
}

// MapErr is Map for fallible trials: fn may additionally return an error. The
// first failure aborts the remaining fan-out promptly — trials not yet
// started are skipped — and the returned error is the lowest-index error
// among the trials that ran (wrapped with that index). Results of completed
// error-free trials are filled regardless.
func MapErr[S, R any](specs []S, fn func(i int, spec S) (R, error)) ([]R, error) {
	return mapCore(nil, specs, fn)
}

// MapErrCtx is MapErr under a context: a failing trial or a cancelled context
// aborts the remaining fan-out promptly. A trial error takes precedence over
// the cancellation error when both occur.
func MapErrCtx[S, R any](ctx context.Context, specs []S, fn func(i int, spec S) (R, error)) ([]R, error) {
	return mapCore(ctx, specs, fn)
}

// Collect runs a fixed set of heterogeneous thunks concurrently and returns
// their results in order — sugar over Map for the "baseline plus a couple of
// arms" shape that several harnesses have.
func Collect[R any](thunks ...func() R) []R {
	return Map(thunks, func(_ int, f func() R) R { return f() })
}
