// Package runner is the deterministic trial-sweep engine behind every
// experiment harness: it fans a slice of independent trial specifications out
// across a worker pool and returns the results in submission order.
//
// Determinism is the load-bearing property. The paper's evaluation is
// reproduced by sweeps of self-contained simulations — each trial builds its
// own machine from an explicit seed derived from the trial's identity (never
// drawn from a shared RNG stream) — so executing them concurrently cannot
// perturb any result, and collecting results by submission index makes the
// rendered output byte-identical at any parallelism level. The regression
// test in internal/experiments pins exactly that: -jobs 1 and -jobs 8 must
// render the same bytes.
//
// The pool size defaults to GOMAXPROCS and is overridden globally via
// SetJobs, which cmd/dimctl wires to its -jobs flag.
package runner

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
)

// jobs holds the configured pool size; 0 selects GOMAXPROCS.
var jobs atomic.Int64

// SetJobs sets the worker-pool size used by subsequent Map calls. n <= 0
// restores the default (GOMAXPROCS at the time of the sweep).
func SetJobs(n int) {
	if n < 0 {
		n = 0
	}
	jobs.Store(int64(n))
}

// Jobs returns the effective worker-pool size.
func Jobs() int {
	if j := jobs.Load(); j > 0 {
		return int(j)
	}
	return runtime.GOMAXPROCS(0)
}

// TrialPanic carries a panic out of a worker so Map can re-raise it on the
// calling goroutine with the trial index, the original panic value, and the
// failing trial's stack trace attached.
type TrialPanic struct {
	Index int
	Value any
	Stack []byte
}

// Error formats the panic with the originating trial's stack, which would
// otherwise be lost when the panic crosses the worker boundary.
func (p *TrialPanic) Error() string {
	return fmt.Sprintf("runner: trial %d panicked: %v\n%s", p.Index, p.Value, p.Stack)
}

// Map executes fn(i, specs[i]) for every spec across the worker pool and
// returns the results indexed exactly like specs. fn must be self-contained:
// it may read shared immutable data (the baseline result, the grid) but must
// derive all stochastic state from the spec itself.
//
// If any trial panics, Map re-panics on the caller's goroutine after all
// workers have drained, raising the panic of the lowest trial index so the
// failure is independent of scheduling order.
func Map[S, R any](specs []S, fn func(i int, spec S) R) []R {
	n := len(specs)
	res := make([]R, n)
	workers := Jobs()
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := range specs {
			func() {
				defer func() {
					if r := recover(); r != nil {
						panic(&TrialPanic{Index: i, Value: r, Stack: debug.Stack()})
					}
				}()
				res[i] = fn(i, specs[i])
			}()
		}
		return res
	}

	var (
		next     atomic.Int64
		wg       sync.WaitGroup
		panicMu  sync.Mutex
		panicked *TrialPanic
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				func() {
					defer func() {
						if r := recover(); r != nil {
							tp := &TrialPanic{Index: i, Value: r, Stack: debug.Stack()}
							panicMu.Lock()
							if panicked == nil || i < panicked.Index {
								panicked = tp
							}
							panicMu.Unlock()
						}
					}()
					res[i] = fn(i, specs[i])
				}()
			}
		}()
	}
	wg.Wait()
	if panicked != nil {
		panic(panicked)
	}
	return res
}

// MapErr is Map for fallible trials: fn may additionally return an error.
// All trials still run to completion; the returned error is the one from the
// lowest failing trial index (wrapped with that index), so the reported
// failure is independent of scheduling order — mirroring Map's panic
// contract. Results of error-free trials are filled regardless.
func MapErr[S, R any](specs []S, fn func(i int, spec S) (R, error)) ([]R, error) {
	type out struct {
		r   R
		err error
	}
	outs := Map(specs, func(i int, s S) out {
		r, err := fn(i, s)
		return out{r, err}
	})
	res := make([]R, len(outs))
	var firstErr error
	for i, o := range outs {
		res[i] = o.r
		if o.err != nil && firstErr == nil {
			firstErr = fmt.Errorf("runner: trial %d: %w", i, o.err)
		}
	}
	return res, firstErr
}

// Collect runs a fixed set of heterogeneous thunks concurrently and returns
// their results in order — sugar over Map for the "baseline plus a couple of
// arms" shape that several harnesses have.
func Collect[R any](thunks ...func() R) []R {
	return Map(thunks, func(_ int, f func() R) R { return f() })
}
