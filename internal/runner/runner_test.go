package runner

import (
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
)

func TestMapOrderAndCompleteness(t *testing.T) {
	defer SetJobs(0)
	specs := make([]int, 1000)
	for i := range specs {
		specs[i] = i * 3
	}
	for _, j := range []int{0, 1, 2, 7, 64} {
		SetJobs(j)
		got := Map(specs, func(i, s int) int { return s + i })
		for i, v := range got {
			if want := specs[i] + i; v != want {
				t.Fatalf("jobs=%d: res[%d] = %d, want %d", j, i, v, want)
			}
		}
	}
}

func TestMapEmpty(t *testing.T) {
	if got := Map(nil, func(i int, s struct{}) int { return 0 }); len(got) != 0 {
		t.Fatalf("empty Map returned %d results", len(got))
	}
}

func TestMapRunsEachTrialExactlyOnce(t *testing.T) {
	SetJobs(8)
	defer SetJobs(0)
	var calls [256]atomic.Int32
	specs := make([]int, len(calls))
	for i := range specs {
		specs[i] = i
	}
	Map(specs, func(i, s int) int {
		calls[i].Add(1)
		return 0
	})
	for i := range calls {
		if c := calls[i].Load(); c != 1 {
			t.Fatalf("trial %d executed %d times", i, c)
		}
	}
}

func TestMapPanicSequentialWrapsToo(t *testing.T) {
	SetJobs(1)
	defer SetJobs(0)
	defer func() {
		tp, ok := recover().(*TrialPanic)
		if !ok || tp.Index != 2 || tp.Value != "serial-boom" {
			t.Fatalf("jobs=1 panic = %+v, want *TrialPanic for trial 2", tp)
		}
	}()
	Map([]int{0, 1, 2}, func(i, s int) int {
		if i == 2 {
			panic("serial-boom")
		}
		return 0
	})
}

func TestMapPanicLowestIndexWins(t *testing.T) {
	SetJobs(8)
	defer SetJobs(0)
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("expected panic to propagate")
		}
		tp, ok := r.(*TrialPanic)
		if !ok {
			t.Fatalf("panic value %T, want *TrialPanic", r)
		}
		if tp.Index != 3 || tp.Value != "boom-3" {
			t.Fatalf("panic = trial %d value %v, want lowest failing trial 3", tp.Index, tp.Value)
		}
		if !strings.Contains(tp.Error(), "trial 3 panicked: boom-3") || len(tp.Stack) == 0 {
			t.Fatalf("TrialPanic.Error() = %q, want index, value and stack", tp.Error())
		}
	}()
	specs := []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}
	Map(specs, func(i, s int) int {
		if i >= 3 {
			panic("boom-" + string(rune('0'+i)))
		}
		return 0
	})
}

func TestCollect(t *testing.T) {
	SetJobs(4)
	defer SetJobs(0)
	got := Collect(
		func() string { return "a" },
		func() string { return "b" },
		func() string { return "c" },
	)
	if len(got) != 3 || got[0] != "a" || got[1] != "b" || got[2] != "c" {
		t.Fatalf("Collect = %v", got)
	}
}

func TestJobsDefaults(t *testing.T) {
	SetJobs(0)
	if Jobs() < 1 {
		t.Fatalf("Jobs() = %d, want >= 1", Jobs())
	}
	SetJobs(-5)
	if Jobs() < 1 {
		t.Fatalf("Jobs() after negative = %d", Jobs())
	}
	SetJobs(3)
	if Jobs() != 3 {
		t.Fatalf("Jobs() = %d, want 3", Jobs())
	}
	SetJobs(0)
}

func TestMapErrFillsResultsAndReportsLowestIndex(t *testing.T) {
	defer SetJobs(0)
	SetJobs(4)
	specs := make([]int, 100)
	for i := range specs {
		specs[i] = i
	}
	res, err := MapErr(specs, func(i int, v int) (int, error) {
		if v == 17 || v == 60 {
			return 0, fmt.Errorf("boom at %d", v)
		}
		return v * 2, nil
	})
	if err == nil || !strings.Contains(err.Error(), "trial 17") {
		t.Fatalf("err = %v, want lowest failing trial 17", err)
	}
	for i, v := range res {
		if i == 17 || i == 60 {
			continue
		}
		if v != i*2 {
			t.Errorf("res[%d] = %d, want %d", i, v, i*2)
		}
	}
}

func TestMapErrNoError(t *testing.T) {
	res, err := MapErr([]int{1, 2, 3}, func(_ int, v int) (int, error) { return v + 1, nil })
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 3 || res[0] != 2 || res[2] != 4 {
		t.Errorf("res = %v", res)
	}
}
