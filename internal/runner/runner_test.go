package runner

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
)

func TestMapOrderAndCompleteness(t *testing.T) {
	defer SetJobs(0)
	specs := make([]int, 1000)
	for i := range specs {
		specs[i] = i * 3
	}
	for _, j := range []int{0, 1, 2, 7, 64} {
		SetJobs(j)
		got := Map(specs, func(i, s int) int { return s + i })
		for i, v := range got {
			if want := specs[i] + i; v != want {
				t.Fatalf("jobs=%d: res[%d] = %d, want %d", j, i, v, want)
			}
		}
	}
}

func TestMapEmpty(t *testing.T) {
	if got := Map(nil, func(i int, s struct{}) int { return 0 }); len(got) != 0 {
		t.Fatalf("empty Map returned %d results", len(got))
	}
}

func TestMapRunsEachTrialExactlyOnce(t *testing.T) {
	SetJobs(8)
	defer SetJobs(0)
	var calls [256]atomic.Int32
	specs := make([]int, len(calls))
	for i := range specs {
		specs[i] = i
	}
	Map(specs, func(i, s int) int {
		calls[i].Add(1)
		return 0
	})
	for i := range calls {
		if c := calls[i].Load(); c != 1 {
			t.Fatalf("trial %d executed %d times", i, c)
		}
	}
}

func TestMapPanicSequentialWrapsToo(t *testing.T) {
	SetJobs(1)
	defer SetJobs(0)
	defer func() {
		tp, ok := recover().(*TrialPanic)
		if !ok || tp.Index != 2 || tp.Value != "serial-boom" {
			t.Fatalf("jobs=1 panic = %+v, want *TrialPanic for trial 2", tp)
		}
	}()
	Map([]int{0, 1, 2}, func(i, s int) int {
		if i == 2 {
			panic("serial-boom")
		}
		return 0
	})
}

func TestMapPanicLowestIndexWins(t *testing.T) {
	SetJobs(8)
	defer SetJobs(0)
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("expected panic to propagate")
		}
		tp, ok := r.(*TrialPanic)
		if !ok {
			t.Fatalf("panic value %T, want *TrialPanic", r)
		}
		// Early abort means later panicking trials may be skipped; the
		// reported panic is the lowest-index one among those that ran,
		// which is always a genuinely failing trial (>= 3 here).
		if tp.Index < 3 || tp.Value != "boom-"+string(rune('0'+tp.Index)) {
			t.Fatalf("panic = trial %d value %v, want a failing trial >= 3", tp.Index, tp.Value)
		}
		if !strings.Contains(tp.Error(), "panicked: boom-") || len(tp.Stack) == 0 {
			t.Fatalf("TrialPanic.Error() = %q, want index, value and stack", tp.Error())
		}
	}()
	specs := []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}
	Map(specs, func(i, s int) int {
		if i >= 3 {
			panic("boom-" + string(rune('0'+i)))
		}
		return 0
	})
}

func TestCollect(t *testing.T) {
	SetJobs(4)
	defer SetJobs(0)
	got := Collect(
		func() string { return "a" },
		func() string { return "b" },
		func() string { return "c" },
	)
	if len(got) != 3 || got[0] != "a" || got[1] != "b" || got[2] != "c" {
		t.Fatalf("Collect = %v", got)
	}
}

func TestJobsDefaults(t *testing.T) {
	SetJobs(0)
	if Jobs() < 1 {
		t.Fatalf("Jobs() = %d, want >= 1", Jobs())
	}
	SetJobs(-5)
	if Jobs() < 1 {
		t.Fatalf("Jobs() after negative = %d", Jobs())
	}
	SetJobs(3)
	if Jobs() != 3 {
		t.Fatalf("Jobs() = %d, want 3", Jobs())
	}
	SetJobs(0)
}

func TestMapErrReportsFailingTrialAndKeepsCompletedResults(t *testing.T) {
	defer SetJobs(0)
	SetJobs(4)
	specs := make([]int, 100)
	for i := range specs {
		specs[i] = i
	}
	var ran atomic.Int64
	res, err := MapErr(specs, func(i int, v int) (int, error) {
		ran.Add(1)
		if v == 17 || v == 60 {
			return 0, fmt.Errorf("boom at %d", v)
		}
		return v * 2, nil
	})
	if err == nil || !(strings.Contains(err.Error(), "trial 17") || strings.Contains(err.Error(), "trial 60")) {
		t.Fatalf("err = %v, want a failing trial", err)
	}
	// Every trial that completed without error must have its result filled;
	// skipped trials hold the zero value.
	for i, v := range res {
		if v != 0 && v != i*2 {
			t.Errorf("res[%d] = %d, want 0 (skipped) or %d", i, v, i*2)
		}
	}
	if res[0] != 0 && res[1] != 2 {
		t.Errorf("early trials should have completed: res[:2] = %v", res[:2])
	}
}

// TestMapErrAbortsRemainingTrials pins the early-abort contract the fleet
// sweeps rely on: once a trial fails, unstarted trials are skipped instead of
// running the whole sweep. Sequential execution makes the count exact.
func TestMapErrAbortsRemainingTrials(t *testing.T) {
	defer SetJobs(0)
	SetJobs(1)
	specs := make([]int, 50)
	var ran atomic.Int64
	_, err := MapErr(specs, func(i int, _ int) (int, error) {
		ran.Add(1)
		if i == 3 {
			return 0, fmt.Errorf("boom")
		}
		return 0, nil
	})
	if err == nil || !strings.Contains(err.Error(), "trial 3") {
		t.Fatalf("err = %v, want trial 3", err)
	}
	if got := ran.Load(); got != 4 {
		t.Fatalf("ran %d trials after failure at index 3, want exactly 4", got)
	}
}

func TestMapErrCtxCancelledBeforeStartRunsNothing(t *testing.T) {
	defer SetJobs(0)
	SetJobs(4)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var ran atomic.Int64
	_, err := MapErrCtx(ctx, make([]int, 20), func(int, int) (int, error) {
		ran.Add(1)
		return 0, nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if got := ran.Load(); got != 0 {
		t.Fatalf("%d trials ran under a pre-cancelled context", got)
	}
}

func TestMapErrCtxCancelMidSweepAbortsPromptly(t *testing.T) {
	defer SetJobs(0)
	SetJobs(1)
	ctx, cancel := context.WithCancel(context.Background())
	var ran atomic.Int64
	res, err := MapErrCtx(ctx, make([]int, 50), func(i int, _ int) (int, error) {
		ran.Add(1)
		if i == 5 {
			cancel() // an external cancellation landing mid-sweep
		}
		return i + 1, nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if got := ran.Load(); got != 6 {
		t.Fatalf("ran %d trials after cancel at index 5, want exactly 6", got)
	}
	// Completed trials keep their results even on the cancelled path.
	if res[5] != 6 {
		t.Fatalf("res[5] = %d, want 6", res[5])
	}
}

func TestMapCtxSuccessMatchesMap(t *testing.T) {
	defer SetJobs(0)
	SetJobs(4)
	specs := []int{1, 2, 3, 4, 5}
	res, err := MapCtx(context.Background(), specs, func(_ int, v int) int { return v * v })
	if err != nil {
		t.Fatal(err)
	}
	want := Map(specs, func(_ int, v int) int { return v * v })
	for i := range want {
		if res[i] != want[i] {
			t.Fatalf("res = %v, want %v", res, want)
		}
	}
}

func TestMapErrNoError(t *testing.T) {
	res, err := MapErr([]int{1, 2, 3}, func(_ int, v int) (int, error) { return v + 1, nil })
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 3 || res[0] != 2 || res[2] != 4 {
		t.Errorf("res = %v", res)
	}
}
