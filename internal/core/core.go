// Package core implements Dimetrodon, the paper's contribution: preventive
// thermal management by scheduler-level idle cycle injection.
//
// Each time the scheduler is about to dispatch a thread, the attached
// Controller decides — with per-thread, per-process or global probability p —
// to displace the thread with an idle quantum of length L instead. The
// scheduler pins the displaced thread (so no other core runs it) and runs the
// idle thread, letting the core drop into a low-power state and cool; when
// the quantum ends the thread is unpinned and made runnable again (§3.1).
//
// Policy control mirrors the paper's system-call interface: policies can be
// installed and removed at runtime at global, per-process, and per-thread
// granularity, with the most specific match winning. Kernel-level threads are
// always scheduled (never injected) by default, the policy decision the paper
// adopts to avoid delaying interrupt processing twice; the flag InjectKernel
// exists for the ablation that shows why that decision matters.
package core

import (
	"fmt"

	"repro/internal/rng"
	"repro/internal/sched"
	"repro/internal/units"
)

// Params are one injection policy: at each scheduling decision the thread is
// displaced with probability P by an idle quantum of length L.
type Params struct {
	P float64
	L units.Time
}

// Validate reports whether the parameters are in the model's domain
// (p ∈ [0, 1), L ≥ 0; p/(1−p) diverges at 1).
func (p Params) Validate() error {
	if p.P < 0 || p.P >= 1 {
		return fmt.Errorf("dimetrodon: probability %v outside [0,1)", p.P)
	}
	if p.L < 0 {
		return fmt.Errorf("dimetrodon: negative idle quantum %v", p.L)
	}
	return nil
}

// Enabled reports whether the policy can ever inject.
func (p Params) Enabled() bool { return p.P > 0 && p.L > 0 }

// String formats the policy like the paper's configuration labels.
func (p Params) String() string {
	return fmt.Sprintf("p=%g L=%v", p.P, p.L)
}

// Controller is the Dimetrodon policy engine; it implements sched.Injector.
type Controller struct {
	rng *rng.Source

	global     Params
	hasGlobal  bool
	perProcess map[int]Params
	perThread  map[int]Params

	// InjectKernel permits injection into kernel-level threads. The
	// default (false) reproduces the paper's policy of always scheduling
	// kernel threads.
	InjectKernel bool

	// Deterministic replaces the Bernoulli draw with an error-accumulator
	// that injects exactly every 1/p-th decision on average with no
	// variance — the "more deterministic model" the paper speculates
	// "would likely result in smoother curves" (§3.4).
	Deterministic bool
	debt          map[int]float64

	// Statistics.
	Decisions  int // dispatches where a policy applied
	Injections int // dispatches converted into idle quanta
}

// NewController returns a controller drawing randomness from src.
func NewController(src *rng.Source) *Controller {
	return &Controller{
		rng:        src,
		perProcess: make(map[int]Params),
		perThread:  make(map[int]Params),
		debt:       make(map[int]float64),
	}
}

// SetGlobal installs the system-wide policy applied to every thread without
// a more specific entry.
func (c *Controller) SetGlobal(p Params) error {
	if err := p.Validate(); err != nil {
		return err
	}
	c.global = p
	c.hasGlobal = true
	return nil
}

// ClearGlobal removes the system-wide policy.
func (c *Controller) ClearGlobal() { c.hasGlobal = false }

// SetProcess installs a policy for every thread of a process — the
// granularity Figure 5's per-thread control experiment exercises to slow the
// hot process while the cool process runs uninterrupted.
func (c *Controller) SetProcess(pid int, p Params) error {
	if err := p.Validate(); err != nil {
		return err
	}
	c.perProcess[pid] = p
	return nil
}

// ClearProcess removes a process policy.
func (c *Controller) ClearProcess(pid int) { delete(c.perProcess, pid) }

// SetThread installs a policy for a single thread.
func (c *Controller) SetThread(tid int, p Params) error {
	if err := p.Validate(); err != nil {
		return err
	}
	c.perThread[tid] = p
	return nil
}

// ClearThread removes a thread policy.
func (c *Controller) ClearThread(tid int) { delete(c.perThread, tid) }

// PolicyFor returns the policy that governs thread t, most specific first,
// and whether any applies.
func (c *Controller) PolicyFor(t *sched.Thread) (Params, bool) {
	if p, ok := c.perThread[t.ID]; ok {
		return p, true
	}
	if p, ok := c.perProcess[t.ProcessID]; ok {
		return p, true
	}
	if c.hasGlobal {
		return c.global, true
	}
	return Params{}, false
}

// Decide implements sched.Injector. The dispatching core index is unused by
// the base policy (injection is a per-thread decision); topology-aware
// wrappers like smt.CoScheduler use it.
func (c *Controller) Decide(t *sched.Thread, coreID int, now units.Time) (units.Time, bool) {
	if t.Kernel && !c.InjectKernel {
		return 0, false
	}
	p, ok := c.PolicyFor(t)
	if !ok || !p.Enabled() {
		return 0, false
	}
	c.Decisions++
	inject := false
	if c.Deterministic {
		d := c.debt[t.ID] + p.P
		if d >= 1 {
			d -= 1
			inject = true
		}
		c.debt[t.ID] = d
	} else {
		inject = c.rng.Bernoulli(p.P)
	}
	if !inject {
		return 0, false
	}
	c.Injections++
	return p.L, true
}

// InjectionRate returns the fraction of governed dispatch decisions that were
// converted into idle quanta — it converges to p for a single global policy.
func (c *Controller) InjectionRate() float64 {
	if c.Decisions == 0 {
		return 0
	}
	return float64(c.Injections) / float64(c.Decisions)
}
