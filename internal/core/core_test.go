package core

import (
	"math"
	"testing"

	"repro/internal/rng"
	"repro/internal/sched"
	"repro/internal/units"
)

func user(id, pid int) *sched.Thread {
	return &sched.Thread{ID: id, ProcessID: pid, Priority: sched.PriorityUser}
}

func kernel(id int) *sched.Thread {
	return &sched.Thread{ID: id, Kernel: true, Priority: sched.PriorityKernel}
}

func TestParamsValidate(t *testing.T) {
	good := []Params{
		{P: 0, L: 0},
		{P: 0.5, L: 100 * units.Millisecond},
		{P: 0.99, L: units.Millisecond},
	}
	for _, p := range good {
		if err := p.Validate(); err != nil {
			t.Errorf("%v rejected: %v", p, err)
		}
	}
	bad := []Params{
		{P: -0.1, L: units.Millisecond},
		{P: 1.0, L: units.Millisecond},
		{P: 0.5, L: -units.Millisecond},
	}
	for _, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("%v accepted", p)
		}
	}
	if (Params{P: 0.5, L: 0}).Enabled() {
		t.Error("zero-L policy enabled")
	}
	if !(Params{P: 0.5, L: units.Millisecond}).Enabled() {
		t.Error("valid policy not enabled")
	}
}

func TestPolicyPrecedence(t *testing.T) {
	c := NewController(rng.New(1))
	global := Params{P: 0.1, L: 10 * units.Millisecond}
	process := Params{P: 0.2, L: 20 * units.Millisecond}
	thread := Params{P: 0.3, L: 30 * units.Millisecond}
	if err := c.SetGlobal(global); err != nil {
		t.Fatal(err)
	}
	if err := c.SetProcess(5, process); err != nil {
		t.Fatal(err)
	}
	if err := c.SetThread(42, thread); err != nil {
		t.Fatal(err)
	}
	if got, ok := c.PolicyFor(user(42, 5)); !ok || got != thread {
		t.Errorf("thread policy = %v, %v", got, ok)
	}
	if got, ok := c.PolicyFor(user(7, 5)); !ok || got != process {
		t.Errorf("process policy = %v, %v", got, ok)
	}
	if got, ok := c.PolicyFor(user(7, 9)); !ok || got != global {
		t.Errorf("global policy = %v, %v", got, ok)
	}
	c.ClearThread(42)
	if got, _ := c.PolicyFor(user(42, 5)); got != process {
		t.Errorf("after ClearThread: %v", got)
	}
	c.ClearProcess(5)
	if got, _ := c.PolicyFor(user(42, 5)); got != global {
		t.Errorf("after ClearProcess: %v", got)
	}
	c.ClearGlobal()
	if _, ok := c.PolicyFor(user(42, 5)); ok {
		t.Error("policy survived ClearGlobal")
	}
}

func TestSetterValidation(t *testing.T) {
	c := NewController(rng.New(1))
	if err := c.SetGlobal(Params{P: 1.5, L: units.Millisecond}); err == nil {
		t.Error("bad global accepted")
	}
	if err := c.SetProcess(1, Params{P: -1, L: units.Millisecond}); err == nil {
		t.Error("bad process accepted")
	}
	if err := c.SetThread(1, Params{P: 0.5, L: -1}); err == nil {
		t.Error("bad thread accepted")
	}
}

func TestKernelThreadsNeverInjectedByDefault(t *testing.T) {
	// §3.1: "We always schedule kernel-level threads."
	c := NewController(rng.New(1))
	if err := c.SetGlobal(Params{P: 0.99, L: 100 * units.Millisecond}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		if _, inject := c.Decide(kernel(1), 0, 0); inject {
			t.Fatal("kernel thread injected")
		}
	}
	c.InjectKernel = true
	injected := false
	for i := 0; i < 1000; i++ {
		if _, inject := c.Decide(kernel(1), 0, 0); inject {
			injected = true
			break
		}
	}
	if !injected {
		t.Error("InjectKernel=true never injected")
	}
}

func TestInjectionRateConvergesToP(t *testing.T) {
	for _, p := range []float64{0.1, 0.25, 0.5, 0.75} {
		c := NewController(rng.New(uint64(p * 1000)))
		if err := c.SetGlobal(Params{P: p, L: 50 * units.Millisecond}); err != nil {
			t.Fatal(err)
		}
		th := user(1, 1)
		n := 200000
		for i := 0; i < n; i++ {
			c.Decide(th, 0, 0)
		}
		if got := c.InjectionRate(); math.Abs(got-p) > 0.01 {
			t.Errorf("p=%v: injection rate %v", p, got)
		}
	}
}

func TestDecideReturnsConfiguredQuantum(t *testing.T) {
	c := NewController(rng.New(3))
	want := 37 * units.Millisecond
	if err := c.SetGlobal(Params{P: 0.9, L: want}); err != nil {
		t.Fatal(err)
	}
	th := user(1, 1)
	for i := 0; i < 1000; i++ {
		if l, ok := c.Decide(th, 0, 0); ok {
			if l != want {
				t.Fatalf("Decide returned %v, want %v", l, want)
			}
			return
		}
	}
	t.Fatal("never injected at p=0.9")
}

func TestDeterministicAccumulator(t *testing.T) {
	c := NewController(rng.New(1))
	c.Deterministic = true
	if err := c.SetGlobal(Params{P: 0.25, L: units.Millisecond}); err != nil {
		t.Fatal(err)
	}
	th := user(1, 1)
	pattern := make([]bool, 16)
	for i := range pattern {
		_, pattern[i] = c.Decide(th, 0, 0)
	}
	// Exactly one injection per 4 decisions, at a fixed phase.
	count := 0
	for _, inj := range pattern {
		if inj {
			count++
		}
	}
	if count != 4 {
		t.Errorf("16 decisions yielded %d injections, want exactly 4", count)
	}
	// Per-thread accumulators are independent.
	other := user(2, 1)
	_, injected := c.Decide(other, 0, 0)
	if injected {
		t.Error("fresh thread's first decision injected at p=0.25")
	}
}

func TestDeterministicRateMatchesP(t *testing.T) {
	for _, p := range []float64{0.1, 0.33, 0.5, 0.75} {
		c := NewController(rng.New(1))
		c.Deterministic = true
		if err := c.SetGlobal(Params{P: p, L: units.Millisecond}); err != nil {
			t.Fatal(err)
		}
		th := user(1, 1)
		n := 10000
		for i := 0; i < n; i++ {
			c.Decide(th, 0, 0)
		}
		if got := c.InjectionRate(); math.Abs(got-p) > 0.001 {
			t.Errorf("deterministic p=%v rate %v", p, got)
		}
	}
}

func TestNoPolicyNoDecision(t *testing.T) {
	c := NewController(rng.New(1))
	if _, inject := c.Decide(user(1, 1), 0, 0); inject {
		t.Error("injected without a policy")
	}
	if c.Decisions != 0 {
		t.Error("counted a decision without a policy")
	}
	if c.InjectionRate() != 0 {
		t.Error("rate non-zero without decisions")
	}
}

func TestParamsString(t *testing.T) {
	s := Params{P: 0.5, L: 100 * units.Millisecond}.String()
	if s != "p=0.5 L=100ms" {
		t.Errorf("String = %q", s)
	}
}
