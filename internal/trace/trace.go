// Package trace records time series produced by the simulator — power draw,
// per-core temperatures, request latencies — and provides the windowed
// statistics, downsampling, CSV export and quick ASCII rendering the
// experiment harnesses and CLI need.
package trace

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"

	"repro/internal/units"
)

// Sample is one (time, value) observation.
type Sample struct {
	At    units.Time
	Value float64
}

// Series is an append-only time series. Samples must be appended in
// non-decreasing time order; Append panics otherwise, because out-of-order
// observations indicate an event-loop bug upstream.
type Series struct {
	Name    string
	Unit    string
	samples []Sample
}

// NewSeries returns an empty series with the given name and unit label.
func NewSeries(name, unit string) *Series {
	return &Series{Name: name, Unit: unit}
}

// Append records a sample at time t.
func (s *Series) Append(t units.Time, v float64) {
	if n := len(s.samples); n > 0 && t < s.samples[n-1].At {
		panic(fmt.Sprintf("trace: out-of-order sample for %q: %v after %v", s.Name, t, s.samples[n-1].At))
	}
	s.samples = append(s.samples, Sample{At: t, Value: v})
}

// Len returns the number of samples.
func (s *Series) Len() int { return len(s.samples) }

// At returns the i-th sample.
func (s *Series) At(i int) Sample { return s.samples[i] }

// Samples returns the underlying samples. The slice must not be mutated.
func (s *Series) Samples() []Sample { return s.samples }

// Last returns the final sample, and false if the series is empty.
func (s *Series) Last() (Sample, bool) {
	if len(s.samples) == 0 {
		return Sample{}, false
	}
	return s.samples[len(s.samples)-1], true
}

// MeanOver returns the time-weighted mean of the series over [from, to],
// treating the value as piecewise-constant from each sample until the next
// (zero-order hold, matching how the simulator emits state changes). Samples
// before `from` contribute their held value from `from` onward. It returns
// false when the window contains no information.
func (s *Series) MeanOver(from, to units.Time) (float64, bool) {
	if to <= from || len(s.samples) == 0 {
		return 0, false
	}
	// Find the first sample at or after `from`; the sample before it (if
	// any) holds the value entering the window.
	idx := sort.Search(len(s.samples), func(i int) bool { return s.samples[i].At >= from })
	cur := math.NaN()
	if idx > 0 {
		cur = s.samples[idx-1].Value
	}
	t := from
	var integral float64
	var covered units.Time
	for i := idx; i < len(s.samples) && s.samples[i].At <= to; i++ {
		smp := s.samples[i]
		if !math.IsNaN(cur) && smp.At > t {
			integral += cur * (smp.At - t).Seconds()
			covered += smp.At - t
		}
		if smp.At >= t {
			t = smp.At
		}
		cur = smp.Value
	}
	if !math.IsNaN(cur) && to > t {
		integral += cur * (to - t).Seconds()
		covered += to - t
	}
	if covered == 0 {
		return 0, false
	}
	return integral / covered.Seconds(), true
}

// Mean returns the unweighted mean of all sample values (0 for empty series).
func (s *Series) Mean() float64 {
	if len(s.samples) == 0 {
		return 0
	}
	var sum float64
	for _, smp := range s.samples {
		sum += smp.Value
	}
	return sum / float64(len(s.samples))
}

// Min and Max return the extreme sample values; both return 0 for an empty
// series.
func (s *Series) Min() float64 {
	m := math.Inf(1)
	for _, smp := range s.samples {
		m = math.Min(m, smp.Value)
	}
	if math.IsInf(m, 1) {
		return 0
	}
	return m
}

// Max returns the maximum sample value (0 for an empty series).
func (s *Series) Max() float64 {
	m := math.Inf(-1)
	for _, smp := range s.samples {
		m = math.Max(m, smp.Value)
	}
	if math.IsInf(m, -1) {
		return 0
	}
	return m
}

// Downsample returns a new series with at most n points, each the
// time-weighted mean of an equal-width bucket of the original span. Useful
// for plotting 300 s traces sampled at kilohertz rates.
func (s *Series) Downsample(n int) *Series {
	out := NewSeries(s.Name, s.Unit)
	if len(s.samples) == 0 || n <= 0 {
		return out
	}
	start := s.samples[0].At
	end := s.samples[len(s.samples)-1].At
	if end <= start || n == 1 || len(s.samples) == 1 {
		out.Append(start, s.Mean())
		return out
	}
	width := (end - start) / units.Time(n)
	if width <= 0 {
		width = 1
	}
	for b := 0; b < n; b++ {
		lo := start + units.Time(b)*width
		hi := lo + width
		if b == n-1 {
			hi = end
		}
		if m, ok := s.MeanOver(lo, hi); ok {
			out.Append(lo+(hi-lo)/2, m)
		}
	}
	return out
}

// WriteCSV writes "time_s,value" rows (with a header) to w.
func (s *Series) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "time_s,%s_%s\n", sanitize(s.Name), sanitize(s.Unit)); err != nil {
		return err
	}
	for _, smp := range s.samples {
		if _, err := fmt.Fprintf(w, "%.6f,%.6g\n", smp.At.Seconds(), smp.Value); err != nil {
			return err
		}
	}
	return nil
}

func sanitize(s string) string {
	s = strings.ToLower(strings.TrimSpace(s))
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9':
			return r
		default:
			return '_'
		}
	}, s)
}

// ASCII renders the series as a crude monospace chart of the given width and
// height — enough to eyeball a Figure 1 or Figure 2 shape from the CLI.
func (s *Series) ASCII(width, height int) string {
	if width < 8 {
		width = 8
	}
	if height < 2 {
		height = 2
	}
	ds := s.Downsample(width)
	if ds.Len() == 0 {
		return "(empty series)\n"
	}
	lo, hi := ds.Min(), ds.Max()
	if hi-lo < 1e-12 {
		hi = lo + 1
	}
	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", ds.Len()))
	}
	for i := 0; i < ds.Len(); i++ {
		v := ds.At(i).Value
		row := int(math.Round((v - lo) / (hi - lo) * float64(height-1)))
		grid[height-1-row][i] = '*'
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s (%s)  min=%.3g max=%.3g\n", s.Name, s.Unit, lo, hi)
	for _, row := range grid {
		b.WriteString("|")
		b.Write(row)
		b.WriteString("\n")
	}
	b.WriteString("+" + strings.Repeat("-", ds.Len()) + "\n")
	return b.String()
}

// Recorder bundles named series so simulator components can publish samples
// without owning their storage.
type Recorder struct {
	series map[string]*Series
	order  []string
}

// NewRecorder returns an empty recorder.
func NewRecorder() *Recorder {
	return &Recorder{series: make(map[string]*Series)}
}

// Series returns the series with the given name, creating it (with the given
// unit) on first use.
func (r *Recorder) Series(name, unit string) *Series {
	if s, ok := r.series[name]; ok {
		return s
	}
	s := NewSeries(name, unit)
	r.series[name] = s
	r.order = append(r.order, name)
	return s
}

// Lookup returns the named series, or nil if it was never created.
func (r *Recorder) Lookup(name string) *Series { return r.series[name] }

// Names returns the series names in creation order.
func (r *Recorder) Names() []string {
	out := make([]string, len(r.order))
	copy(out, r.order)
	return out
}
