package trace

import (
	"math"
	"strings"
	"testing"

	"repro/internal/units"
)

func TestAppendAndAccessors(t *testing.T) {
	s := NewSeries("power", "W")
	s.Append(0, 10)
	s.Append(units.Second, 20)
	s.Append(2*units.Second, 30)
	if s.Len() != 3 {
		t.Fatalf("Len = %d", s.Len())
	}
	if got := s.At(1); got.At != units.Second || got.Value != 20 {
		t.Errorf("At(1) = %+v", got)
	}
	last, ok := s.Last()
	if !ok || last.Value != 30 {
		t.Errorf("Last = %+v, %v", last, ok)
	}
	if s.Mean() != 20 {
		t.Errorf("Mean = %v", s.Mean())
	}
	if s.Min() != 10 || s.Max() != 30 {
		t.Errorf("Min/Max = %v/%v", s.Min(), s.Max())
	}
}

func TestEmptySeries(t *testing.T) {
	s := NewSeries("x", "u")
	if _, ok := s.Last(); ok {
		t.Error("Last ok on empty")
	}
	if s.Mean() != 0 || s.Min() != 0 || s.Max() != 0 {
		t.Error("empty series stats not zero")
	}
	if _, ok := s.MeanOver(0, units.Second); ok {
		t.Error("MeanOver ok on empty")
	}
}

func TestOutOfOrderPanics(t *testing.T) {
	s := NewSeries("x", "u")
	s.Append(units.Second, 1)
	defer func() {
		if recover() == nil {
			t.Error("out-of-order append did not panic")
		}
	}()
	s.Append(0, 2)
}

func TestMeanOverZeroOrderHold(t *testing.T) {
	s := NewSeries("p", "W")
	s.Append(0, 10)
	s.Append(units.Second, 30)
	// [0,2s]: 10 W for 1 s then 30 W for 1 s → 20.
	if m, ok := s.MeanOver(0, 2*units.Second); !ok || math.Abs(m-20) > 1e-9 {
		t.Errorf("MeanOver(0,2s) = %v, %v", m, ok)
	}
	// [0.5s,1s]: held at 10.
	if m, ok := s.MeanOver(500*units.Millisecond, units.Second); !ok || math.Abs(m-10) > 1e-9 {
		t.Errorf("MeanOver(.5,1) = %v", m)
	}
	// Window after the last sample: held at 30.
	if m, ok := s.MeanOver(2*units.Second, 3*units.Second); !ok || math.Abs(m-30) > 1e-9 {
		t.Errorf("MeanOver(2,3) = %v", m)
	}
	// Degenerate window.
	if _, ok := s.MeanOver(units.Second, units.Second); ok {
		t.Error("MeanOver of empty window returned ok")
	}
}

func TestMeanOverBeforeFirstSample(t *testing.T) {
	s := NewSeries("p", "W")
	s.Append(units.Second, 50)
	// [0,1s) has no information; [1s,2s] holds 50.
	m, ok := s.MeanOver(0, 2*units.Second)
	if !ok || math.Abs(m-50) > 1e-9 {
		t.Errorf("MeanOver = %v, %v (should only cover known span)", m, ok)
	}
	if _, ok := s.MeanOver(0, 500*units.Millisecond); ok {
		t.Error("MeanOver before any sample returned ok")
	}
}

func TestDownsample(t *testing.T) {
	s := NewSeries("v", "u")
	for i := 0; i <= 1000; i++ {
		s.Append(units.Time(i)*units.Millisecond, float64(i))
	}
	d := s.Downsample(10)
	if d.Len() == 0 || d.Len() > 10 {
		t.Fatalf("Downsample len = %d", d.Len())
	}
	// Bucket means must ascend for a ramp.
	for i := 1; i < d.Len(); i++ {
		if d.At(i).Value <= d.At(i-1).Value {
			t.Errorf("downsampled ramp not increasing at %d", i)
		}
	}
	// Single point and empty cases.
	one := NewSeries("o", "u")
	one.Append(0, 5)
	if d := one.Downsample(4); d.Len() != 1 || d.At(0).Value != 5 {
		t.Errorf("single-point downsample = %v", d.Samples())
	}
	if d := NewSeries("e", "u").Downsample(4); d.Len() != 0 {
		t.Error("empty downsample non-empty")
	}
}

func TestWriteCSV(t *testing.T) {
	s := NewSeries("Core Temp", "C")
	s.Append(0, 40)
	s.Append(units.Second, 41.5)
	var b strings.Builder
	if err := s.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.HasPrefix(out, "time_s,core_temp_c\n") {
		t.Errorf("CSV header = %q", out)
	}
	if !strings.Contains(out, "1.000000,41.5") {
		t.Errorf("CSV missing row: %q", out)
	}
}

func TestASCII(t *testing.T) {
	s := NewSeries("p", "W")
	for i := 0; i < 100; i++ {
		s.Append(units.Time(i)*units.Second, float64(i%10))
	}
	out := s.ASCII(40, 5)
	if !strings.Contains(out, "*") {
		t.Error("ASCII chart has no points")
	}
	if strings.Count(out, "\n") < 5 {
		t.Error("ASCII chart too short")
	}
	if out := NewSeries("e", "u").ASCII(40, 5); !strings.Contains(out, "empty") {
		t.Errorf("empty ASCII = %q", out)
	}
}

func TestRecorder(t *testing.T) {
	r := NewRecorder()
	a := r.Series("a", "W")
	b := r.Series("b", "C")
	if r.Series("a", "ignored") != a {
		t.Error("Series did not return existing series")
	}
	if r.Lookup("b") != b || r.Lookup("zzz") != nil {
		t.Error("Lookup wrong")
	}
	names := r.Names()
	if len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Errorf("Names = %v", names)
	}
}
