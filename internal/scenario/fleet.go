package scenario

import (
	"fmt"
	"strings"

	"repro/internal/analysis"
	"repro/internal/units"
)

// FleetAgg summarises a fleet run across machines: distribution statistics
// of the per-machine temperatures, the totals the operator of a real fleet
// would watch (work delivered, power, injection overhead), and the
// thermal-violation and emergency-backstop tallies.
type FleetAgg struct {
	// Mean-junction distribution across machines (°C).
	MeanJunctionP50 float64
	MeanJunctionP90 float64
	MeanJunctionMax float64
	// Peak-junction distribution across machines (°C).
	PeakJunctionP50 float64
	PeakJunctionP99 float64
	PeakJunctionMax float64

	TotalWorkRate  float64 // fleet reference-seconds of work per second
	TotalPower     float64 // summed mean package power, W
	OverheadPct    float64 // fleet injected idle / occupied core time
	TotalInjection int

	ViolationS      float64 // summed seconds any junction sat above threshold
	TotalViolations int     // summed excursion counts
	MachinesViol    int     // machines with at least one violation

	TM1Trips      int
	TM1ThrottledS float64

	// Web QoS across machines running the webserver component.
	WebMachines   int
	WebGoodMean   float64 // mean "good" fraction
	WebGoodMin    float64
	WebThroughput float64 // summed requests/s
}

// Result is one executed scenario: the resolved per-machine outcomes plus
// the fleet aggregate.
type Result struct {
	Spec     *Spec
	Scale    float64
	Duration units.Time
	Warmup   units.Time
	Machines []MachineResult
	Fleet    FleetAgg
}

// Aggregate folds per-machine results into the fleet view. Exported for the
// fleetsched engine, whose per-machine results share this shape and must
// aggregate identically for cross-path comparability.
func Aggregate(spec *Spec, machines []MachineResult) FleetAgg {
	return aggregate(spec, machines)
}

// aggregate folds per-machine results into the fleet view.
func aggregate(spec *Spec, machines []MachineResult) FleetAgg {
	return aggregateFrom(spec, len(machines), func(i int) *MachineResult { return &machines[i] })
}

// aggregateFrom folds n per-machine results into the fleet view through an
// index accessor, so callers that never materialise a full []MachineResult
// — the mega path tiles a small distinct result set across millions of
// indices — aggregate through the very same arithmetic as the per-machine
// path.
//
// Summation order is part of the determinism contract: every floating-point
// total is a compensated (Kahan) sum folded in strict index order 0..n-1,
// never in worker-completion order, so the per-machine, batched and tiled
// mega paths produce bit-identical aggregates regardless of how the
// simulations were scheduled — and the compensation keeps the totals exact
// to the last bit at million-machine scale, where naive running sums drift.
// The temperature percentiles sort each distribution once and index every
// quantile from the sorted copy (analysis.Quantiles), bit-identical to the
// former per-quantile Percentile calls without their six full-fleet
// copy+sorts.
func aggregateFrom(spec *Spec, n int, at func(int) *MachineResult) FleetAgg {
	defer phaseAggregate.Stop(phaseAggregate.Start())
	var agg FleetAgg
	means := make([]float64, n)
	peaks := make([]float64, n)
	var workRate, power, occ, injected, violS, tm1S, webGood, webTput analysis.Kahan
	agg.WebGoodMin = 1
	for i := 0; i < n; i++ {
		m := at(i)
		means[i] = m.MeanJunction
		peaks[i] = m.PeakJunction
		workRate.Add(m.WorkRate)
		power.Add(m.MeanPower)
		agg.TotalInjection += m.Injections
		occ.Add(m.BusyS + m.InjectedIdleS)
		injected.Add(m.InjectedIdleS)
		violS.Add(m.ViolationS)
		agg.TotalViolations += m.Violations
		if m.Violations > 0 {
			agg.MachinesViol++
		}
		agg.TM1Trips += m.TM1Trips
		tm1S.Add(m.TM1ThrottledS)
		if m.Web != nil {
			agg.WebMachines++
			g := m.Web.GoodFraction()
			webGood.Add(g)
			if g < agg.WebGoodMin {
				agg.WebGoodMin = g
			}
			webTput.Add(m.Web.Throughput)
		}
	}
	agg.TotalWorkRate = workRate.Sum()
	agg.TotalPower = power.Sum()
	agg.ViolationS = violS.Sum()
	agg.TM1ThrottledS = tm1S.Sum()
	agg.WebThroughput = webTput.Sum()
	mq := analysis.Quantiles(means, 50, 90, 100)
	agg.MeanJunctionP50, agg.MeanJunctionP90, agg.MeanJunctionMax = mq[0], mq[1], mq[2]
	pq := analysis.Quantiles(peaks, 50, 99, 100)
	agg.PeakJunctionP50, agg.PeakJunctionP99, agg.PeakJunctionMax = pq[0], pq[1], pq[2]
	if o := occ.Sum(); o > 0 {
		agg.OverheadPct = 100 * injected.Sum() / o
	}
	if agg.WebMachines > 0 {
		agg.WebGoodMean = webGood.Sum() / float64(agg.WebMachines)
	} else {
		agg.WebGoodMin = 0
	}
	return agg
}

// String renders the fleet summary followed by the per-machine table —
// fixed-width and fully deterministic, so golden-trace and cross-parallelism
// tests can diff it byte-for-byte.
func (r *Result) String() string {
	var b strings.Builder
	s := r.Spec
	fmt.Fprintf(&b, "Scenario %s: %s\n", s.Name, s.Title)
	fmt.Fprintf(&b, "fleet of %d machines, %v per machine (%v warmup), policy %s, violation >= %.1fC\n",
		s.Fleet.Machines, r.Duration, r.Warmup, policyLabel(s.Policy), s.violationC())
	a := r.Fleet
	fmt.Fprintf(&b, "mean junction across fleet:  p50 %7.3fC  p90 %7.3fC  max %7.3fC\n",
		a.MeanJunctionP50, a.MeanJunctionP90, a.MeanJunctionMax)
	fmt.Fprintf(&b, "peak junction across fleet:  p50 %7.3fC  p99 %7.3fC  max %7.3fC\n",
		a.PeakJunctionP50, a.PeakJunctionP99, a.PeakJunctionMax)
	fmt.Fprintf(&b, "fleet work rate %.3f ref-s/s   total power %.1fW   injection overhead %.2f%% (%d quanta)\n",
		a.TotalWorkRate, a.TotalPower, a.OverheadPct, a.TotalInjection)
	fmt.Fprintf(&b, "thermal violations: %d excursions on %d/%d machines, %.1fs above threshold\n",
		a.TotalViolations, a.MachinesViol, len(r.Machines), a.ViolationS)
	if a.TM1Trips > 0 || a.TM1ThrottledS > 0 || s.Policy.TM1 {
		fmt.Fprintf(&b, "TM1 backstop: %d trips, %.1fs throttled fleet-wide\n", a.TM1Trips, a.TM1ThrottledS)
	}
	if a.WebMachines > 0 {
		fmt.Fprintf(&b, "web QoS: good %.1f%% mean / %.1f%% worst machine, %.1f req/s fleet throughput\n",
			100*a.WebGoodMean, 100*a.WebGoodMin, a.WebThroughput)
	}
	b.WriteString("\n machine      mean      peak    work/s   power    inj%   viol    tm1\n")
	for _, m := range r.Machines {
		fmt.Fprintf(&b, " %4d     %7.3fC  %7.3fC  %7.3f  %6.1fW  %5.2f  %5d  %5d\n",
			m.Index, m.MeanJunction, m.PeakJunction, m.WorkRate, m.MeanPower,
			100*m.OverheadFraction(), m.Violations, m.TM1Trips)
	}
	return b.String()
}

// Label renders the DTM policy for output headers ("dimetrodon[p=0.5
// L=25ms]+tm1"); the fleetsched engine reuses it so scheduled and
// unscheduled headers read alike.
func (p PolicySpec) Label() string { return policyLabel(p) }

// policyLabel renders the policy for headers.
func policyLabel(p PolicySpec) string {
	var label string
	switch p.Kind {
	case "", PolicyNone:
		label = "race-to-idle"
	case PolicyDimetrodon:
		label = fmt.Sprintf("dimetrodon[p=%g L=%gms]", p.P, p.LMS)
		if p.Deterministic {
			label = "det-" + label
		}
	case PolicyVFS:
		label = fmt.Sprintf("vfs[%d]", p.PState)
	case PolicyP4TCC:
		label = fmt.Sprintf("p4tcc[%.3f]", p.Duty)
	case PolicyAdaptive:
		if p.TargetC > 0 {
			label = fmt.Sprintf("adaptive[%.0fC]", p.TargetC)
		} else {
			label = "adaptive[auto]"
		}
	default:
		label = p.Kind
	}
	if p.TM1 {
		label += "+tm1"
	}
	return label
}
