package scenario

import (
	"math"
	"math/big"
	"testing"

	"repro/internal/webserver"
)

// syntheticResult fabricates a deterministic per-machine result with
// magnitudes adversarial to naive float64 accumulation: watt-scale power
// against second-scale busy time, with an occasional large outlier the way a
// throttled machine shows up in a real fleet.
func syntheticResult(i int) MachineResult {
	r := MachineResult{
		Index:        i,
		Seed:         uint64(i) * 0x9e3779b97f4a7c15,
		FanFactor:    1,
		MeanJunction: 50 + float64(i%911)*0.01,
		PeakJunction: 60 + float64(i%373)*0.02,
		WorkRate:     0.97 + 1e-7*float64(i%101),
		MeanPower:    85.5 + 1e-6*float64(i%53),
		InjectedIdleS: 0.125 + 1e-8*float64(i%29),
		BusyS:         29.875,
		ViolationS:    0,
	}
	if i%1000 == 0 {
		// Outlier machines dominate the running sum's exponent, the
		// condition under which naive accumulation sheds the small terms.
		r.MeanPower += 1e7
		r.ViolationS = 12.5
		r.Violations = 3
	}
	return r
}

// TestAggregateKahanMillionMachines is the fleet-accumulator regression at
// 1e6 synthetic machines: the compensated index-ordered sums must stay
// within one ulp of an exact big.Float reference on the accumulators the
// naive implementation drifted on (total power, injected idle, occupancy),
// and the accessor-based aggregation used by the tiled mega path must be
// bit-identical to aggregating a materialised slice — the summation-order
// contract.
func TestAggregateKahanMillionMachines(t *testing.T) {
	if testing.Short() {
		t.Skip("1e6-machine aggregation in -short mode")
	}
	const n = 1_000_000
	machines := make([]MachineResult, n)
	exactPower := new(big.Float).SetPrec(200)
	exactInjected := new(big.Float).SetPrec(200)
	exactOcc := new(big.Float).SetPrec(200)
	for i := range machines {
		machines[i] = syntheticResult(i)
		m := &machines[i]
		exactPower.Add(exactPower, big.NewFloat(m.MeanPower))
		exactInjected.Add(exactInjected, big.NewFloat(m.InjectedIdleS))
		exactOcc.Add(exactOcc, big.NewFloat(m.BusyS+m.InjectedIdleS))
	}

	spec := &Spec{Name: "synthetic"}
	agg := aggregate(spec, machines)

	checkUlp := func(name string, got float64, exact *big.Float) {
		t.Helper()
		want, _ := exact.Float64()
		ulp := math.Nextafter(want, math.Inf(1)) - want
		if math.Abs(got-want) > ulp {
			t.Errorf("%s = %.17g, exact %.17g (diff %g > 1 ulp at 1e6 machines)", name, got, want, got-want)
		}
	}
	checkUlp("TotalPower", agg.TotalPower, exactPower)
	wantOverhead := func() float64 {
		inj, _ := exactInjected.Float64()
		occ, _ := exactOcc.Float64()
		return 100 * inj / occ
	}()
	if math.Abs(agg.OverheadPct-wantOverhead) > 1e-12*wantOverhead {
		t.Errorf("OverheadPct = %.17g, exact %.17g", agg.OverheadPct, wantOverhead)
	}

	// Order contract: the tiled accessor (what RunMega aggregates through)
	// must reproduce the slice aggregation bit for bit.
	viaAccessor := aggregateFrom(spec, n, func(i int) *MachineResult { return &machines[i] })
	if viaAccessor != agg {
		t.Errorf("accessor aggregation diverged from slice aggregation:\n slice    %+v\n accessor %+v", agg, viaAccessor)
	}
}

// TestAggregateWebAccumulators pins the web-QoS accumulators through the
// Kahan path: mean of the good fractions, min, and summed throughput.
func TestAggregateWebAccumulators(t *testing.T) {
	machines := make([]MachineResult, 4)
	fracs := []float64{0.5, 0.25, 1, 0.75}
	for i := range machines {
		// Shape Good/Completed so GoodFraction lands exactly on fracs[i].
		machines[i] = MachineResult{
			Index: i,
			Web: &webserver.Stats{
				Completed:  4,
				Good:       int(fracs[i] * 4),
				Throughput: 10 * float64(i+1),
			},
		}
	}
	agg := aggregate(&Spec{Name: "web"}, machines)
	if agg.WebMachines != 4 {
		t.Fatalf("WebMachines = %d, want 4", agg.WebMachines)
	}
	if want := (0.5 + 0.25 + 1 + 0.75) / 4; agg.WebGoodMean != want {
		t.Errorf("WebGoodMean = %v, want %v", agg.WebGoodMean, want)
	}
	if agg.WebGoodMin != 0.25 {
		t.Errorf("WebGoodMin = %v, want 0.25", agg.WebGoodMin)
	}
	if agg.WebThroughput != 100 {
		t.Errorf("WebThroughput = %v, want 100", agg.WebThroughput)
	}
}
