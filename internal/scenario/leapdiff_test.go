package scenario

import (
	"math"
	"testing"
)

// TestLeapVsExactDivergence is the library-wide integrator acceptance gate
// (mirrored by the leap-vs-exact CI job): every unscheduled scenario runs
// under both integrators and each machine's thermal observables — windowed
// mean junction, tick-sampled peak junction — must agree within the 0.05 °C
// band the quiescence-leap controller guarantees. Scenarios with a scheduler
// block are validated by their own pinned fixtures instead: temperature-fed
// placement feedback legitimately reroutes jobs on sub-tolerance
// differences, so per-machine trajectories are not comparable there.
func TestLeapVsExactDivergence(t *testing.T) {
	for _, name := range Names() {
		spec, _ := Get(name)
		if spec.Scheduler != nil {
			continue
		}
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			exact := runPinned(t, name, "exact")
			leap := runPinned(t, name, "leap")
			if len(exact.Machines) != len(leap.Machines) {
				t.Fatalf("machine count differs: %d vs %d", len(exact.Machines), len(leap.Machines))
			}
			var worstMean, worstPeak float64
			for i := range exact.Machines {
				e, l := exact.Machines[i], leap.Machines[i]
				if d := math.Abs(e.MeanJunction - l.MeanJunction); d > worstMean {
					worstMean = d
				}
				if d := math.Abs(e.PeakJunction - l.PeakJunction); d > worstPeak {
					worstPeak = d
				}
				if e.IdleTemp != l.IdleTemp {
					t.Errorf("machine %d: idle temp differs (%v vs %v) — the idle solve is integrator-independent", i, e.IdleTemp, l.IdleTemp)
				}
			}
			if worstMean >= GoldenAbsTol {
				t.Errorf("mean junction diverged by %.4f C (>= %.2f C)", worstMean, GoldenAbsTol)
			}
			if worstPeak >= GoldenAbsTol {
				t.Errorf("peak junction diverged by %.4f C (>= %.2f C)", worstPeak, GoldenAbsTol)
			}
			t.Logf("max divergence: mean %.4f C, peak %.4f C across %d machines", worstMean, worstPeak, len(exact.Machines))
		})
	}
}
