package scenario

import (
	"fmt"
	"sort"
	"sync"
)

// The registry maps scenario names to their specs. The starter library
// registers itself in init; embedders add their own via Register.
var (
	regMu    sync.RWMutex
	registry = map[string]*Spec{}
)

// Register validates the spec and adds it to the registry. Registering a
// name twice is an error — scenarios are identities, not configuration
// overlays.
func Register(s *Spec) error {
	if err := s.Validate(); err != nil {
		return err
	}
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := registry[s.Name]; dup {
		return fmt.Errorf("scenario: %q already registered", s.Name)
	}
	// Store a copy so later caller-side mutation cannot bypass Validate.
	registry[s.Name] = s.Clone()
	return nil
}

// MustRegister is Register for static library entries.
func MustRegister(s *Spec) {
	if err := Register(s); err != nil {
		panic(err)
	}
}

// Get returns a copy of the named scenario. Callers may freely mutate the
// copy (the fleet_diurnal example strips the policy off a library spec);
// the validated registry entry stays untouched.
func Get(name string) (*Spec, bool) {
	regMu.RLock()
	defer regMu.RUnlock()
	s, ok := registry[name]
	if !ok {
		return nil, false
	}
	return s.Clone(), true
}

// Names returns the registered scenario names in stable order.
func Names() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	names := make([]string, 0, len(registry))
	for n := range registry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
