package scenario

import (
	"fmt"
	"strings"

	"repro/internal/export"
)

// ExportResult writes a run's plot-ready CSVs into dir: a per-machine table
// and a fleet-aggregate table, named after the scenario.
func ExportResult(r *Result, dir string) ([]string, error) {
	return export.Write(dir, RenderResult(r)...)
}

// RenderResult renders the run's CSV artefacts in memory — the single
// definition ExportResult writes to disk and the service daemon serves over
// HTTP, which is what makes daemon exports byte-identical to the CLI's.
func RenderResult(r *Result) []export.File {
	var mb strings.Builder
	mb.WriteString("machine,seed,fan_factor,mean_c,peak_c,idle_c,work_rate,power_w," +
		"injections,injected_idle_s,busy_s,overhead_pct,violation_s,violations," +
		"tm1_trips,tm1_throttled_s,web_good,web_tolerable,web_rps\n")
	for _, m := range r.Machines {
		webGood, webTol, webRPS := 0.0, 0.0, 0.0
		if m.Web != nil {
			webGood = m.Web.GoodFraction()
			webTol = m.Web.TolerableFraction()
			webRPS = m.Web.Throughput
		}
		fmt.Fprintf(&mb, "%d,%d,%.6f,%.4f,%.4f,%.4f,%.6f,%.4f,%d,%.4f,%.4f,%.4f,%.3f,%d,%d,%.3f,%.6f,%.6f,%.3f\n",
			m.Index, m.Seed, m.FanFactor, m.MeanJunction, m.PeakJunction, m.IdleTemp,
			m.WorkRate, m.MeanPower, m.Injections, m.InjectedIdleS, m.BusyS,
			100*m.OverheadFraction(), m.ViolationS, m.Violations,
			m.TM1Trips, m.TM1ThrottledS, webGood, webTol, webRPS)
	}

	a := r.Fleet
	var fb strings.Builder
	fb.WriteString("metric,value\n")
	row := func(k string, format string, v any) { fmt.Fprintf(&fb, "%s,"+format+"\n", k, v) }
	row("machines", "%d", len(r.Machines))
	row("duration_s", "%.3f", r.Duration.Seconds())
	row("warmup_s", "%.3f", r.Warmup.Seconds())
	row("mean_junction_p50_c", "%.4f", a.MeanJunctionP50)
	row("mean_junction_p90_c", "%.4f", a.MeanJunctionP90)
	row("mean_junction_max_c", "%.4f", a.MeanJunctionMax)
	row("peak_junction_p50_c", "%.4f", a.PeakJunctionP50)
	row("peak_junction_p99_c", "%.4f", a.PeakJunctionP99)
	row("peak_junction_max_c", "%.4f", a.PeakJunctionMax)
	row("total_work_rate", "%.6f", a.TotalWorkRate)
	row("total_power_w", "%.4f", a.TotalPower)
	row("overhead_pct", "%.4f", a.OverheadPct)
	row("total_injections", "%d", a.TotalInjection)
	row("violation_s", "%.3f", a.ViolationS)
	row("total_violations", "%d", a.TotalViolations)
	row("machines_with_violations", "%d", a.MachinesViol)
	row("tm1_trips", "%d", a.TM1Trips)
	row("tm1_throttled_s", "%.3f", a.TM1ThrottledS)
	row("web_machines", "%d", a.WebMachines)
	row("web_good_mean", "%.6f", a.WebGoodMean)
	row("web_good_min", "%.6f", a.WebGoodMin)
	row("web_throughput_rps", "%.3f", a.WebThroughput)

	base := strings.ReplaceAll(r.Spec.Name, "-", "_")
	return []export.File{
		{Name: fmt.Sprintf("scenario_%s_machines.csv", base), Content: mb.String()},
		{Name: fmt.Sprintf("scenario_%s_fleet.csv", base), Content: fb.String()},
	}
}

// Export runs the named registered scenario and writes its CSVs.
func Export(name string, scale float64, dir string) ([]string, error) {
	res, err := RunByName(name, scale)
	if err != nil {
		return nil, err
	}
	return ExportResult(res, dir)
}
