package scenario

import (
	"fmt"
	"strconv"
	"strings"
)

// Tolerance bands for comparing tolerance-mode (leap-integrator) rendered
// output against exact-mode golden fixtures: a numeric token passes within
// GoldenAbsTol absolute — the thermal band the leap integrator guarantees —
// or GoldenRelTol relative (work, power and count totals, which scale with
// the run). The golden harnesses here and in fleetsched, and the
// leap-vs-exact CI job, all compare through TolerantDiff so the acceptance
// band is defined once.
const (
	GoldenAbsTol = 0.05
	GoldenRelTol = 0.01
)

// TolerantDiff compares two rendered outputs with numeric tolerance: the
// line structure and every non-numeric token must match exactly, numeric
// tokens within the golden tolerance bands. It returns a description of the
// first out-of-tolerance difference, or "" when the outputs match.
func TolerantDiff(want, got string) string {
	wl, gl := strings.Split(want, "\n"), strings.Split(got, "\n")
	if len(wl) != len(gl) {
		return fmt.Sprintf("line count differs: want %d, got %d", len(wl), len(gl))
	}
	for i := range wl {
		wf, gf := strings.Fields(wl[i]), strings.Fields(gl[i])
		if len(wf) != len(gf) {
			return fmt.Sprintf("line %d: token count differs\n-%s\n+%s", i+1, wl[i], gl[i])
		}
		for j := range wf {
			if wf[j] == gf[j] {
				continue
			}
			wv, wok := parseNumericToken(wf[j])
			gv, gok := parseNumericToken(gf[j])
			if !wok || !gok || !withinTolerance(wv, gv) ||
				stripNumeric(wf[j]) != stripNumeric(gf[j]) {
				return fmt.Sprintf("line %d: token %q vs %q\n-%s\n+%s", i+1, wf[j], gf[j], wl[i], gl[i])
			}
		}
	}
	return ""
}

func withinTolerance(a, b float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	if d <= GoldenAbsTol {
		return true
	}
	ref := a
	if ref < 0 {
		ref = -ref
	}
	return d <= GoldenRelTol*ref
}

// parseNumericToken extracts the numeric value from tokens like "35.556C",
// "42.3W", "20.62%", "(15710" or "+0.000".
func parseNumericToken(tok string) (float64, bool) {
	trimmed := strings.TrimFunc(tok, func(r rune) bool {
		return !(r >= '0' && r <= '9' || r == '.' || r == '-' || r == '+')
	})
	if trimmed == "" {
		return 0, false
	}
	v, err := strconv.ParseFloat(trimmed, 64)
	return v, err == nil
}

// stripNumeric removes the numeric core of a token, leaving its decoration
// ("C", "W", "%", parentheses) for exact comparison.
func stripNumeric(tok string) string {
	return strings.Map(func(r rune) rune {
		if r >= '0' && r <= '9' || r == '.' || r == '-' || r == '+' {
			return -1
		}
		return r
	}, tok)
}
