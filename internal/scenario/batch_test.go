package scenario

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/runner"
)

// batchedPinned runs a library scenario through the batched engine with the
// integrator pinned, resetting the cross-run cache first so every invocation
// exercises the engine rather than a prior test's results.
func batchedPinned(t *testing.T, name, integrator string) *Result {
	t.Helper()
	spec, ok := Get(name)
	if !ok {
		t.Fatalf("scenario %q missing from the library", name)
	}
	pinned := *spec
	pinned.Machine.Integrator = integrator
	ResetBatchCache()
	res, err := RunBatched(&pinned, goldenScale)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestBatchedMatchesPerMachine is the batched-vs-per-machine equivalence
// suite: for every library scenario, both integrators, and both a serial and
// an 8-worker pool, the batched engine's rendered output and per-machine
// results must be byte-identical to the independent path's. This is the
// contract that makes RunBatched an optimisation rather than a semantic
// fork — grouping, ladder sharing, arena stepping, seed-invariant
// replication and deduplication all have to be invisible in the bytes.
func TestBatchedMatchesPerMachine(t *testing.T) {
	defer runner.SetJobs(runner.Jobs())
	for _, name := range Names() {
		spec, ok := Get(name)
		if !ok {
			t.Fatalf("scenario %q missing from the library", name)
		}
		if spec.Scheduler != nil {
			// Coupled fleets reject identically on both paths; pinned by
			// TestBatchedSchedulerRejected.
			continue
		}
		for _, integ := range []string{"exact", "leap"} {
			runner.SetJobs(1)
			want := runPinned(t, name, integ)
			for _, jobs := range []int{1, 8} {
				t.Run(name+"/"+integ+"/jobs"+string(rune('0'+jobs)), func(t *testing.T) {
					runner.SetJobs(jobs)
					got := batchedPinned(t, name, integ)
					if g, w := got.String(), want.String(); g != w {
						t.Errorf("batched output diverged from per-machine at %d jobs:\n%s", jobs, firstDiff(w, g))
					}
					if !reflect.DeepEqual(got.Machines, want.Machines) {
						t.Errorf("batched per-machine results diverged from per-machine path at %d jobs", jobs)
					}
					if got.Fleet != want.Fleet {
						t.Errorf("batched fleet aggregate diverged:\n batched %+v\n direct  %+v", got.Fleet, want.Fleet)
					}
				})
			}
		}
	}
}

// TestBatchedSchedulerRejected pins the scheduler-block contract: the
// batched engine and the mega path refuse coupled fleets with exactly the
// error the independent path gives, pointing at the fleetsched engine.
func TestBatchedSchedulerRejected(t *testing.T) {
	// Mirror of the fleetsched library's sched-shootout, declared inline
	// because that library registers from its own package init, which
	// in-package tests here never import.
	spec := &Spec{
		Name:   "sched-shootout",
		Fleet:  FleetSpec{Machines: 12, BaseSeed: 8100, FanSpread: 0.4, AmbientSpreadC: 9},
		Policy: PolicySpec{Kind: PolicyDimetrodon, P: 0.35, LMS: 25},
		Scheduler: &SchedulerSpec{
			Policy: PlaceCoolestFirst,
			RoundS: 2,
			Jobs: []JobClassSpec{
				{Name: "batch", Rate: 0.55, Threads: 2, WorkS: 14, WorkSpread: 0.5},
			},
		},
		DurationS:  400,
		WarmupFrac: 0.1,
		ViolationC: 47,
	}
	_, errDirect := Run(spec, goldenScale)
	_, errBatched := RunBatched(spec, goldenScale)
	_, errMega := RunMega(spec, 10_000, goldenScale)
	if errDirect == nil || errBatched == nil || errMega == nil {
		t.Fatalf("scheduler spec must be rejected on every path: direct=%v batched=%v mega=%v",
			errDirect, errBatched, errMega)
	}
	if errBatched.Error() != errDirect.Error() {
		t.Errorf("batched rejection %q differs from direct %q", errBatched, errDirect)
	}
	if errMega.Error() != errDirect.Error() {
		t.Errorf("mega rejection %q differs from direct %q", errMega, errDirect)
	}
}

// TestRunMegaTilesExactly pins the tiled mega path against a materialised
// reference: aggregating the tiled accessor must equal aggregating an
// actually materialised tiled slice, and the summary must name both the
// tiled and the simulated fleet sizes.
func TestRunMegaTilesExactly(t *testing.T) {
	spec, ok := Get("multi-tenant")
	if !ok {
		t.Fatal("multi-tenant missing from the library")
	}
	const total = 1000
	mega, err := RunMega(spec, total, goldenScale)
	if err != nil {
		t.Fatal(err)
	}
	base := spec.Fleet.Machines
	if mega.Total != total || mega.Base != base {
		t.Fatalf("mega sizes = (%d, %d), want (%d, %d)", mega.Total, mega.Base, total, base)
	}

	ResetBatchCache()
	br, err := RunBatched(spec, goldenScale)
	if err != nil {
		t.Fatal(err)
	}
	tiled := make([]MachineResult, total)
	for i := range tiled {
		tiled[i] = br.Machines[i%base]
	}
	if want := aggregate(spec, tiled); mega.Fleet != want {
		t.Errorf("tiled-accessor aggregate diverged from materialised tiling:\n mega %+v\n want %+v", mega.Fleet, want)
	}
	if s := mega.String(); !strings.Contains(s, "mega fleet of 1000 machines (16 distinct simulated)") {
		t.Errorf("mega summary missing the tiling line:\n%s", s)
	}
	if mega.Total < mega.Base {
		t.Error("tiling invariant violated")
	}
	if _, err := RunMega(spec, base-1, goldenScale); err == nil {
		t.Error("RunMega must reject totals below the compiled fleet size")
	}
}

// TestBatchCacheDedupsAcrossRuns pins the cross-run cache: a second batched
// run of the same spec at the same scale must resolve at least its group
// representatives from cache instead of re-simulating.
func TestBatchCacheDedupsAcrossRuns(t *testing.T) {
	spec, ok := Get("multi-tenant")
	if !ok {
		t.Fatal("multi-tenant missing from the library")
	}
	ResetBatchCache()
	if _, err := RunBatched(spec, goldenScale); err != nil {
		t.Fatal(err)
	}
	h0, _, entries := BatchCacheStats()
	if entries == 0 {
		t.Fatal("first batched run stored nothing in the cross-run cache")
	}
	if _, err := RunBatched(spec, goldenScale); err != nil {
		t.Fatal(err)
	}
	h1, _, _ := BatchCacheStats()
	if h1 <= h0 {
		t.Errorf("second identical run hit the cache %d times, want > %d", h1, h0)
	}
}

// TestBatchedTelemetryRunsEveryMachine pins the telemetry constraint: with a
// tap installed, result sharing stands down and every machine streams its
// own samples.
func TestBatchedTelemetryRunsEveryMachine(t *testing.T) {
	spec, ok := Get("multi-tenant")
	if !ok {
		t.Fatal("multi-tenant missing from the library")
	}
	seen := make(map[int]bool)
	var mu chan struct{} = make(chan struct{}, 1)
	mu <- struct{}{}
	res, err := RunBatchedOpts(spec, goldenScale, RunOptions{
		TelemetryEvery: 5,
		OnTelemetry: func(s MachineSample) {
			<-mu
			seen[s.Index] = true
			mu <- struct{}{}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range res.Machines {
		if !seen[i] {
			t.Errorf("machine %d produced no telemetry under the batched engine", i)
		}
	}
}
