package scenario

import (
	"bytes"
	"encoding/json"
	"testing"
)

// Two spellings of the same scenario: identical content, different JSON key
// order at every nesting level. The cache key the service daemon relies on
// must not see a difference.
const canonSpecA = `{
  "name": "canon-probe",
  "title": "canonical probe",
  "duration_s": 30,
  "warmup_frac": 0.2,
  "fleet": {"machines": 3, "base_seed": 7, "fan_spread": 0.1},
  "machine": {"cores": 4},
  "workload": [
    {"kind": "burn", "threads": 2, "arrival": {"pattern": "diurnal", "min_load": 0.25}},
    {"kind": "spec", "benchmark": "namd"}
  ],
  "policy": {"kind": "dimetrodon", "p": 0.25, "l_ms": 50},
  "scheduler": {
    "jobs": [{"name": "small", "rate": 0.5, "work_s": 4}],
    "migration": {"enabled": true}
  }
}`

const canonSpecB = `{
  "scheduler": {
    "migration": {"enabled": true},
    "jobs": [{"work_s": 4, "rate": 0.5, "name": "small"}]
  },
  "policy": {"l_ms": 50, "p": 0.25, "kind": "dimetrodon"},
  "workload": [
    {"arrival": {"min_load": 0.25, "pattern": "diurnal"}, "threads": 2, "kind": "burn"},
    {"benchmark": "namd", "kind": "spec"}
  ],
  "machine": {"cores": 4},
  "fleet": {"fan_spread": 0.1, "base_seed": 7, "machines": 3},
  "warmup_frac": 0.2,
  "duration_s": 30,
  "title": "canonical probe",
  "name": "canon-probe"
}`

func mustHash(t *testing.T, src string) string {
	t.Helper()
	s, err := Decode([]byte(src))
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	h, err := s.Hash()
	if err != nil {
		t.Fatalf("Hash: %v", err)
	}
	return h
}

func TestCanonicalHashFieldOrderInvariant(t *testing.T) {
	ha := mustHash(t, canonSpecA)
	hb := mustHash(t, canonSpecB)
	if ha != hb {
		t.Fatalf("field-order permutation changed the hash:\n A %s\n B %s", ha, hb)
	}
}

func TestCanonicalHashDefaultNormalization(t *testing.T) {
	implicit := `{
	  "name": "canon-default",
	  "duration_s": 20,
	  "fleet": {"machines": 2, "base_seed": 1},
	  "workload": [{"kind": "burn"}]
	}`
	// The same scenario with every engine default spelled out: violation
	// threshold 70 °C, policy "none", fan factor 1, ambient 25.2 °C, the
	// quad-core single-SMT testbed, one burn thread per scheduler core at
	// power factor 1, steady arrival.
	explicit := `{
	  "name": "canon-default",
	  "duration_s": 20,
	  "violation_c": 70,
	  "fleet": {"machines": 2, "base_seed": 1},
	  "machine": {"cores": 4, "smt_contexts": 1, "fan_factor": 1, "ambient_c": 25.2},
	  "workload": [{"kind": "burn", "threads": 4, "power_factor": 1,
	                "arrival": {"pattern": "steady"}}],
	  "policy": {"kind": "none"}
	}`
	hi := mustHash(t, implicit)
	he := mustHash(t, explicit)
	if hi != he {
		t.Fatalf("explicit defaults changed the hash:\n implicit %s\n explicit %s", hi, he)
	}
}

func TestCanonicalHashSeparatesDistinctSpecs(t *testing.T) {
	base := `{"name":"canon-x","duration_s":20,"fleet":{"machines":2,"base_seed":1},"workload":[{"kind":"burn"}]}`
	longer := `{"name":"canon-x","duration_s":21,"fleet":{"machines":2,"base_seed":1},"workload":[{"kind":"burn"}]}`
	titled := `{"name":"canon-x","title":"t","duration_s":20,"fleet":{"machines":2,"base_seed":1},"workload":[{"kind":"burn"}]}`
	hb := mustHash(t, base)
	if hl := mustHash(t, longer); hl == hb {
		t.Fatalf("duration change did not change the hash")
	}
	// Title feeds the rendered output, so it must be part of the address.
	if ht := mustHash(t, titled); ht == hb {
		t.Fatalf("title change did not change the hash")
	}
}

func TestCanonicalIsSortedStableJSON(t *testing.T) {
	s, err := Decode([]byte(canonSpecA))
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	c1, err := s.Canonical()
	if err != nil {
		t.Fatalf("Canonical: %v", err)
	}
	// The canonical form is valid JSON that re-canonicalises to itself.
	s2, err := Decode(c1)
	if err != nil {
		t.Fatalf("canonical form does not decode: %v\n%s", err, c1)
	}
	c2, err := s2.Canonical()
	if err != nil {
		t.Fatalf("Canonical (round 2): %v", err)
	}
	if !bytes.Equal(c1, c2) {
		t.Fatalf("canonicalisation is not idempotent:\n 1 %s\n 2 %s", c1, c2)
	}
	// Spot-check key ordering at the top level.
	var m map[string]json.RawMessage
	if err := json.Unmarshal(c1, &m); err != nil {
		t.Fatalf("unmarshal canonical: %v", err)
	}
	if !bytes.HasPrefix(c1, []byte(`{"duration_s":`)) {
		t.Fatalf("canonical keys not sorted (want duration_s first):\n%s", c1)
	}
	// Normalize must not mutate the receiver (Register holds shared specs).
	if s.ViolationC != 0 {
		t.Fatalf("Normalize mutated the receiver: ViolationC = %v", s.ViolationC)
	}
}
