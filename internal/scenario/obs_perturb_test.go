package scenario

import (
	"fmt"
	"sync/atomic"
	"testing"

	"repro/internal/machine"
	"repro/internal/obs"
)

// TestObservabilityNonPerturbing pins the load-bearing contract of the obs
// layer: tracing, telemetry streaming and phase profiling read only the wall
// clock and already-computed metric-loop observables, never simulation state.
// Every library scenario must therefore produce byte-identical rendered
// output and CSV artefacts with full observability enabled and disabled —
// across both integrators and both fleet engines.
func TestObservabilityNonPerturbing(t *testing.T) {
	const scale = 0.02
	defer func() {
		obs.EnableProfiling(false)
		_ = machine.SetIntegratorOverride("")
	}()
	for _, name := range Names() {
		spec, _ := Get(name)
		if spec.Scheduler != nil {
			continue // scheduled scenarios: see the fleetsched mirror of this test
		}
		for _, integ := range []string{machine.IntegratorExact, machine.IntegratorLeap} {
			for _, batched := range []bool{false, true} {
				runEngine := RunOpts
				if batched {
					runEngine = RunBatchedOpts
				}
				label := fmt.Sprintf("%s/%s/batched=%v", name, integ, batched)
				if err := machine.SetIntegratorOverride(integ); err != nil {
					t.Fatal(err)
				}

				obs.EnableProfiling(false)
				silent, err := runEngine(spec, scale, RunOptions{})
				if err != nil {
					t.Fatalf("%s: silent run: %v", label, err)
				}

				obs.EnableProfiling(true)
				tr := obs.NewTracer()
				rec := obs.NewFlightRecorder(256)
				tr.SetSink(func(name, cat string, durNS int64) {
					rec.Record("span", "", name, float64(durNS))
				})
				var samples, states atomic.Int64
				observed, err := runEngine(spec, scale, RunOptions{
					Trace:          tr,
					TelemetryEvery: 1,
					OnTelemetry:    func(MachineSample) { samples.Add(1) },
					OnMachine:      func(MachineResult) {},
					OnState: func(i int, st machine.State) {
						states.Add(1)
						rec.Record("state", "", "machine", st.Now.Seconds())
					},
				})
				if err != nil {
					t.Fatalf("%s: observed run: %v", label, err)
				}

				if silent.String() != observed.String() {
					t.Errorf("%s: rendered output diverges with observability on", label)
				}
				if a, b := flattenFiles(silent), flattenFiles(observed); a != b {
					t.Errorf("%s: CSV artefacts diverge with observability on", label)
				}
				if tr.Len() == 0 {
					t.Errorf("%s: traced run recorded no spans", label)
				}
				if samples.Load() == 0 {
					t.Errorf("%s: telemetry hook never fired", label)
				}
				if states.Load() == 0 {
					t.Errorf("%s: machine-state observer never fired", label)
				}
				if rec.Total() == 0 {
					t.Errorf("%s: flight recorder captured nothing", label)
				}
			}
		}
	}
}

func flattenFiles(r *Result) string {
	var out string
	for _, f := range RenderResult(r) {
		out += f.Name + "\n" + f.Content
	}
	return out
}
