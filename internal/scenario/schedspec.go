package scenario

import "fmt"

// Placement policy names — the vocabulary of the scheduler block's "policy"
// field. The implementations live in internal/fleetsched (which registers
// the sched-* scenario library); the names live here because the scenario
// package owns the declarative spec language, exactly as it owns the DTM
// policy kinds above. fleetsched's registry test pins the 1:1 correspondence.
const (
	PlaceRandom         = "random"          // uniform over machines
	PlaceRoundRobin     = "round-robin"     // cycle through machines
	PlaceLeastLoaded    = "least-loaded"    // fewest runnable threads per core
	PlaceCoolestFirst   = "coolest-first"   // lowest current max junction temp
	PlaceHeadroom       = "headroom"        // best predicted thermal headroom (EWMA + pending load)
	PlaceInjectionAware = "injection-aware" // penalises machines already injecting heavily
)

// PlacementPolicies lists every placement policy name in canonical
// comparison order (the naive baselines first, the thermal-aware policies
// after, so comparison tables read as an escalation).
var PlacementPolicies = []string{
	PlaceRandom,
	PlaceRoundRobin,
	PlaceLeastLoaded,
	PlaceCoolestFirst,
	PlaceHeadroom,
	PlaceInjectionAware,
}

// ValidPlacementPolicy reports whether name is a known placement policy.
func ValidPlacementPolicy(name string) bool {
	for _, p := range PlacementPolicies {
		if p == name {
			return true
		}
	}
	return false
}

// SchedulerSpec turns a scenario from a fleet of independent machines into a
// coordinated cluster: a deterministic dispatcher consumes the job arrival
// streams declared here and routes every arriving job to a machine through
// the named placement policy, in fixed dispatch rounds. Static Workload
// components still spawn on every machine (background load); scheduled jobs
// arrive on top of them.
type SchedulerSpec struct {
	// Policy is the placement policy for single runs; `dimctl sched
	// compare` sweeps all of PlacementPolicies regardless. Empty selects
	// coolest-first.
	Policy string `json:"policy"`

	// RoundS is the dispatch round length in virtual seconds at scale 1.0:
	// arrivals are routed and migrations decided at round boundaries, and
	// machines advance in lockstep between them. It scales with the run the
	// way diurnal periods do, so the number of dispatch decisions is
	// scale-invariant. Zero selects 2 s.
	RoundS float64 `json:"round_s"`

	Jobs []JobClassSpec `json:"jobs"`

	Migration MigrationSpec `json:"migration"`
}

// DefaultRoundS is the dispatch round used when a spec leaves RoundS zero.
const DefaultRoundS = 2.0

// JobClassSpec is one class of arriving jobs: a Poisson stream (optionally
// modulated by an arrival envelope) of finite CPU-bound jobs.
type JobClassSpec struct {
	Name string `json:"name"`
	// Rate is the class's mean arrival rate in jobs per virtual second at
	// scale 1.0. Like RoundS it is scale-invariant in expectation: the
	// engine rescales it so the total number of jobs per run stays constant
	// as durations compress.
	Rate float64 `json:"rate"`
	// Threads is the job's thread count; 0 means 1.
	Threads int `json:"threads"`
	// WorkS is the mean per-thread work in reference-seconds at scale 1.0.
	WorkS float64 `json:"work_s"`
	// WorkSpread draws each job's work uniformly from
	// WorkS · [1-WorkSpread, 1+WorkSpread). Zero gives fixed-size jobs.
	WorkSpread float64 `json:"work_spread"`
	// PowerFactor is the job's thermal intensity; 0 means 1.0 (cpuburn).
	PowerFactor float64 `json:"power_factor"`
	// Arrival shapes the class's rate over time (steady, diurnal, window).
	Arrival ArrivalSpec `json:"arrival"`
}

// MigrationSpec enables the evacuation loop: at each round boundary, jobs are
// moved off machines whose hottest junction sits at or above the trigger.
type MigrationSpec struct {
	Enabled bool `json:"enabled"`
	// TriggerC is the evacuation threshold; 0 selects the scenario's
	// violation threshold.
	TriggerC float64 `json:"trigger_c"`
	// MaxMovesPerRound bounds evacuations per round across the fleet
	// (thrash control); 0 selects 1.
	MaxMovesPerRound int `json:"max_moves_per_round"`
}

// MaxJobRate bounds a single class's arrival rate (jobs per virtual second).
const MaxJobRate = 100.0

func (s *SchedulerSpec) validate() error {
	if s.Policy != "" && !ValidPlacementPolicy(s.Policy) {
		return fmt.Errorf("unknown placement policy %q (valid: %v)", s.Policy, PlacementPolicies)
	}
	if s.RoundS < 0 || s.RoundS > MaxDurationS {
		return fmt.Errorf("round %vs outside [0,%d]", s.RoundS, MaxDurationS)
	}
	if len(s.Jobs) == 0 {
		return fmt.Errorf("scheduler needs at least one job class")
	}
	if len(s.Jobs) > MaxComponents {
		return fmt.Errorf("%d job classes exceeds %d", len(s.Jobs), MaxComponents)
	}
	for i := range s.Jobs {
		if err := s.Jobs[i].validate(); err != nil {
			return fmt.Errorf("job class %d: %w", i, err)
		}
	}
	m := &s.Migration
	if m.TriggerC < 0 || m.TriggerC > 150 {
		return fmt.Errorf("migration trigger %v°C outside [0,150]", m.TriggerC)
	}
	if m.MaxMovesPerRound < 0 || m.MaxMovesPerRound > 64 {
		return fmt.Errorf("migration max moves %d outside [0,64]", m.MaxMovesPerRound)
	}
	return nil
}

func (j *JobClassSpec) validate() error {
	if !(j.Rate > 0) || j.Rate > MaxJobRate {
		return fmt.Errorf("rate %v outside (0,%v]", j.Rate, MaxJobRate)
	}
	if j.Threads < 0 || j.Threads > MaxThreads {
		return fmt.Errorf("threads %d outside [0,%d]", j.Threads, MaxThreads)
	}
	if !(j.WorkS > 0) || j.WorkS > 3600 {
		return fmt.Errorf("work %vs outside (0,3600]", j.WorkS)
	}
	if j.WorkSpread < 0 || j.WorkSpread >= 1 {
		return fmt.Errorf("work spread %v outside [0,1)", j.WorkSpread)
	}
	if j.PowerFactor < 0 || j.PowerFactor > 1.5 {
		return fmt.Errorf("power factor %v outside [0,1.5]", j.PowerFactor)
	}
	return j.Arrival.validateShape()
}

// validateShape checks an arrival envelope's parameters without the
// component-kind restriction — job-class envelopes modulate an arrival rate,
// not a thread's duty cycle, so any pattern applies.
func (a *ArrivalSpec) validateShape() error {
	switch a.Pattern {
	case "", ArrivalSteady:
		return nil
	case ArrivalDiurnal:
		if a.MinLoad < 0 || a.MinLoad > 1 {
			return fmt.Errorf("diurnal min load %v outside [0,1]", a.MinLoad)
		}
		if a.PeriodS < 0 || a.PeriodS > MaxDurationS {
			return fmt.Errorf("diurnal period %vs outside [0,%d]", a.PeriodS, MaxDurationS)
		}
		return nil
	case ArrivalWindow:
		if a.StartFrac < 0 || a.EndFrac > 1 || !(a.StartFrac < a.EndFrac) {
			return fmt.Errorf("window [%v,%v) outside 0 <= start < end <= 1", a.StartFrac, a.EndFrac)
		}
		return nil
	default:
		return fmt.Errorf("unknown arrival pattern %q", a.Pattern)
	}
}
