package scenario

import (
	"context"
	"fmt"

	"repro/internal/dtm"
	"repro/internal/machine"
	"repro/internal/obs"
	"repro/internal/runner"
	"repro/internal/units"
	"repro/internal/webserver"
)

// Phase profiler accumulators for the per-machine fleet path. They wrap the
// coarse phases around the thermal kernel — never the kernel's inner step —
// so profiling on or off never touches the hot loop's timings, and the
// disabled cost is one atomic load per phase entry.
var (
	phaseCompile   = obs.RegisterPhase("scenario.compile")
	phaseWarmup    = obs.RegisterPhase("scenario.warmup")
	phaseStep      = obs.RegisterPhase("scenario.step")
	phaseAggregate = obs.RegisterPhase("scenario.aggregate")
)

// traceMachineSpans bounds how many fleet members get their own trace span:
// the first 64 machines tell the story; a million-machine fleet must not
// balloon (or rotate out) the job's span budget.
const traceMachineSpans = 64

// MachineResult is one fleet member's measured outcome over the post-warmup
// window. Temperatures are °C; rates are per second of window.
type MachineResult struct {
	Index     int
	Seed      uint64
	FanFactor float64

	MeanJunction float64
	PeakJunction float64
	IdleTemp     float64
	WorkRate     float64
	MeanPower    float64

	// Injection overhead: injected idle quanta and seconds, against the
	// busy seconds, summed across scheduler cores over the window.
	Injections    int
	InjectedIdleS float64
	BusyS         float64

	// Thermal violations: time any junction sat above the threshold, and
	// the number of distinct excursions (rising edges), both sampled at
	// the metric tick.
	ViolationS float64
	Violations int

	// TM1 backstop activity when armed.
	TM1Trips      int
	TM1ThrottledS float64

	// Web carries the closed-loop QoS stats when the mix includes the
	// webserver component.
	Web *webserver.Stats
}

// OverheadFraction returns injected idle time as a fraction of occupied
// (busy + injected) core time — the per-machine idle-injection overhead.
func (r MachineResult) OverheadFraction() float64 {
	occ := r.BusyS + r.InjectedIdleS
	if occ <= 0 {
		return 0
	}
	return r.InjectedIdleS / occ
}

// RunOptions customises a fleet run beyond the spec itself. The zero value
// reproduces Run exactly; every field is optional.
type RunOptions struct {
	// Context, when non-nil, cancels the sweep: workers stop claiming new
	// machines and in-flight machines abandon their tick loop at the next
	// metric tick. A cancelled run returns ctx's error.
	Context context.Context
	// OnMachine, when non-nil, receives each fleet member's result as it
	// completes. Machines run concurrently across the worker pool, so calls
	// arrive from multiple goroutines in nondeterministic order; the final
	// Result slice stays index-ordered regardless.
	OnMachine func(MachineResult)
	// OnTelemetry, when non-nil, receives per-machine samples every
	// TelemetryEvery metric ticks — the streaming tap the service daemon
	// feeds NDJSON/SSE subscribers from. Calls arrive concurrently, like
	// OnMachine.
	OnTelemetry func(MachineSample)
	// TelemetryEvery is the OnTelemetry cadence in metric ticks (100 ms of
	// virtual time each); 0 disables sampling.
	TelemetryEvery int
	// Completed carries per-machine results recovered from a checkpoint of an
	// earlier, interrupted run of the same spec at the same scale. Machines
	// whose Index appears here are not re-simulated: the recovered result is
	// used verbatim, OnMachine and OnTelemetry do not re-fire for them, and
	// only the remaining machines run. This is sound because fleet members
	// are independent deterministic functions of their own trial — a result
	// computed before a crash is bit-identical to one computed after it.
	Completed []MachineResult
	// Trace, when non-nil, records engine spans (compile, step, aggregate,
	// and the first machines' individual runs) into the job's tracer. Purely
	// observational: spans read the wall clock and already-computed values,
	// never simulation state, so traced output is byte-identical to untraced.
	Trace *obs.Tracer
	// OnState, when non-nil, receives each completed machine's final thermal
	// state through the pure machine.Checkpoint() observer — the tap the
	// daemon's fleet snapshot reads per-machine temperatures from. Capture is
	// a pure observation (no accounting flush), so a run with OnState set
	// stays byte-identical to one without. Calls arrive concurrently, like
	// OnMachine; recovered (Completed) machines do not re-fire.
	OnState func(index int, st machine.State)
}

// MachineSample is one in-run telemetry point from a fleet member. It is
// built exclusively from observables the metric loop already reads every
// tick (junction temperatures, the injection counter), never from
// measurement flushes the silent path would not perform — so a streamed run
// stays byte-identical to an unobserved one. The daemon's determinism tests
// pin exactly that.
type MachineSample struct {
	Index int     `json:"index"`
	NowS  float64 `json:"now_s"`

	MeanJunctionC float64 `json:"mean_junction_c"`
	MaxJunctionC  float64 `json:"max_junction_c"`
	// PeakJunctionC is the running post-warmup peak so far.
	PeakJunctionC float64 `json:"peak_junction_c"`
	// Injections is the cumulative injected-quantum count.
	Injections int `json:"injections"`
	// ViolationS is the accumulated post-warmup violation time so far.
	ViolationS float64 `json:"violation_s"`
}

// runMachine executes one fleet member's simulation: build, apply policy,
// spawn the mix, warm up, then measure the window at the metric tick.
func runMachine(t MachineTrial, opts RunOptions) (MachineResult, error) {
	m, tm1, srv, err := t.Build()
	if err != nil {
		return MachineResult{}, err
	}
	return measure(m, tm1, srv, t, opts)
}

// measure drives an already-built machine through the trial's warmup and
// measurement window and collects the per-machine result. It is the
// post-construction half of runMachine, split out so the batched fleet path
// can interpose on the Build seam (scratch arenas, shared propagator
// adoption) and still measure through the one shared loop — which is what
// makes batched output byte-identical to the per-machine path.
func measure(m *machine.Machine, tm1 *dtm.TM1, srv *webserver.Server, t MachineTrial, opts RunOptions) (MachineResult, error) {
	wt := phaseWarmup.Start()
	m.RunFor(t.Warmup)
	phaseWarmup.Stop(wt)
	cores := m.Config().Model.NumCores * m.Config().SMTContexts
	var busy0, inj0 units.Time
	for c := 0; c < cores; c++ {
		b, inj := m.Sched.Core(c)
		busy0 += b
		inj0 += inj
	}
	injN0 := m.Sched.TotalInjections
	i0 := m.MeanJunctionIntegral()
	w0 := m.TotalWorkDone()
	e0 := m.Energy.Energy()
	t0 := m.Now()
	var tm1Trips0 int
	var tm1Throttled0 units.Time
	if tm1 != nil {
		tm1Trips0 = tm1.Engagements
		tm1Throttled0 = tm1.Throttled(t0)
	}

	violC := units.Celsius(t.Spec.violationC())
	res := MachineResult{Index: t.Index, Seed: t.Seed, FanFactor: t.FanFactor}
	over := false
	ticks := 0
	var temps []units.Celsius
	st := phaseStep.Start()
	for m.Now() < t.Duration {
		if opts.Context != nil {
			if err := opts.Context.Err(); err != nil {
				return MachineResult{}, err
			}
		}
		step := t.Tick
		if rem := t.Duration - m.Now(); rem < step {
			step = rem
		}
		m.RunFor(step)
		ticks++
		temps = m.Net.Junctions(temps)
		hot := false
		for _, tj := range temps {
			if float64(tj) > res.PeakJunction {
				res.PeakJunction = float64(tj)
			}
			if tj >= violC {
				hot = true
			}
		}
		if hot {
			res.ViolationS += step.Seconds()
			if !over {
				res.Violations++
			}
		}
		over = hot
		if opts.OnTelemetry != nil && opts.TelemetryEvery > 0 && ticks%opts.TelemetryEvery == 0 {
			var sum, max float64
			for _, tj := range temps {
				v := float64(tj)
				sum += v
				if v > max {
					max = v
				}
			}
			opts.OnTelemetry(MachineSample{
				Index:         t.Index,
				NowS:          m.Now().Seconds(),
				MeanJunctionC: sum / float64(len(temps)),
				MaxJunctionC:  max,
				PeakJunctionC: res.PeakJunction,
				Injections:    m.Sched.TotalInjections,
				ViolationS:    res.ViolationS,
			})
		}
	}
	phaseStep.StopN(st, int64(ticks))

	secs := (m.Now() - t0).Seconds()
	res.MeanJunction = (m.MeanJunctionIntegral() - i0) / secs
	res.IdleTemp = float64(m.IdleJunctionTemp())
	res.WorkRate = (m.TotalWorkDone() - w0) / secs
	res.MeanPower = float64(m.Energy.Energy()-e0) / secs
	var busy1, inj1 units.Time
	for c := 0; c < cores; c++ {
		b, inj := m.Sched.Core(c)
		busy1 += b
		inj1 += inj
	}
	res.BusyS = (busy1 - busy0).Seconds()
	res.InjectedIdleS = (inj1 - inj0).Seconds()
	res.Injections = m.Sched.TotalInjections - injN0
	if tm1 != nil {
		res.TM1Trips = tm1.Engagements - tm1Trips0
		res.TM1ThrottledS = (tm1.Throttled(m.Now()) - tm1Throttled0).Seconds()
	}
	if srv != nil {
		stats := srv.Snapshot(m.Now())
		res.Web = &stats
	}
	if opts.OnState != nil {
		opts.OnState(t.Index, m.Checkpoint())
	}
	return res, nil
}

// Run executes the scenario's whole fleet across the runner pool and
// aggregates the per-machine results. Output is byte-identical at any -jobs
// setting: each machine is a deterministic function of its trial alone.
func Run(spec *Spec, scale float64) (*Result, error) {
	return RunOpts(spec, scale, RunOptions{})
}

// RunOpts is Run with per-run options: context cancellation and the
// streaming telemetry hooks the service daemon uses. The zero options value
// is exactly Run.
func RunOpts(spec *Spec, scale float64, opts RunOptions) (*Result, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if spec.Scheduler != nil {
		// A scheduler block makes machines interact (routed jobs,
		// migration); the independent per-machine sharding here would
		// silently drop that coupling. The cross-machine engine lives in
		// internal/fleetsched; dimctl and the top-level API route there.
		return nil, fmt.Errorf("scenario %q: has a scheduler block; run it through the fleetsched engine (dimctl sched run %s)", spec.Name, spec.Name)
	}
	spc := opts.Trace.Start("compile", "scenario", 0)
	ct := phaseCompile.Start()
	trials := spec.Compile(scale)
	phaseCompile.Stop(ct)
	spc.EndArgs(map[string]any{"machines": len(trials)})
	var recovered map[int]MachineResult
	if len(opts.Completed) > 0 {
		recovered = make(map[int]MachineResult, len(opts.Completed))
		for _, r := range opts.Completed {
			if r.Index < 0 || r.Index >= len(trials) {
				return nil, fmt.Errorf("scenario %q: checkpoint carries machine %d but the spec compiles %d machines at scale %g", spec.Name, r.Index, len(trials), scale)
			}
			recovered[r.Index] = r
		}
	}
	spStep := opts.Trace.Start("step", "scenario", 0)
	machines, err := runner.MapErrCtx(opts.Context, trials, func(_ int, t MachineTrial) (MachineResult, error) {
		if r, ok := recovered[t.Index]; ok {
			return r, nil
		}
		var sp obs.Span
		if t.Index < traceMachineSpans {
			sp = opts.Trace.Start(fmt.Sprintf("machine-%03d", t.Index), "machine", t.Index+1)
		}
		r, err := runMachine(t, opts)
		if err == nil {
			sp.EndArgs(map[string]any{"peak_c": r.PeakJunction})
			if opts.OnMachine != nil {
				opts.OnMachine(r)
			}
		}
		return r, err
	})
	spStep.EndArgs(map[string]any{"machines": len(trials)})
	if err != nil {
		return nil, fmt.Errorf("scenario %q: %w", spec.Name, err)
	}
	res := &Result{
		Spec:     spec,
		Scale:    scale,
		Duration: trials[0].Duration,
		Warmup:   trials[0].Warmup,
		Machines: machines,
	}
	spAgg := opts.Trace.Start("aggregate", "scenario", 0)
	res.Fleet = aggregate(spec, machines)
	spAgg.End()
	return res, nil
}

// RunByName looks the scenario up in the registry and runs it.
func RunByName(name string, scale float64) (*Result, error) {
	spec, ok := Get(name)
	if !ok {
		return nil, fmt.Errorf("scenario: unknown scenario %q", name)
	}
	return Run(spec, scale)
}
