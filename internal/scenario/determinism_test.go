package scenario

import (
	"testing"

	"repro/internal/runner"
)

// TestFleetDeterministicAcrossJobs extends the runner's central contract to
// fleet scenarios: the rendered fleet output and the exported CSV bytes are
// identical at any parallelism level, because every machine derives its
// entire stochastic state from its identity-derived seed. This mirrors the
// Figure 3 regression test in internal/experiments, over the sharded-fleet
// path instead of a trial sweep.
func TestFleetDeterministicAcrossJobs(t *testing.T) {
	defer runner.SetJobs(0)

	render := func(jobs int) (string, string) {
		runner.SetJobs(jobs)
		res, err := RunByName("fleet-diurnal", 0.02)
		if err != nil {
			t.Fatal(err)
		}
		dir := t.TempDir()
		paths, err := ExportResult(res, dir)
		if err != nil {
			t.Fatal(err)
		}
		var csv string
		for _, p := range paths {
			csv += p[len(dir):] + "\n" + readFile(t, p)
		}
		return res.String(), csv
	}

	serialOut, serialCSV := render(1)
	parallelOut, parallelCSV := render(8)
	if serialOut != parallelOut {
		t.Fatalf("fleet output differs between -jobs 1 and -jobs 8:\n--- jobs=1 ---\n%s\n--- jobs=8 ---\n%s", serialOut, parallelOut)
	}
	if serialCSV != parallelCSV {
		t.Fatal("exported fleet CSVs differ between -jobs 1 and -jobs 8")
	}
}

// TestAdaptiveFleetDeterministicAcrossJobs covers the most stateful machine
// path — adaptive closed-loop control plus the TM1 monitor — across jobs.
func TestAdaptiveFleetDeterministicAcrossJobs(t *testing.T) {
	defer runner.SetJobs(0)

	runner.SetJobs(1)
	serial, err := RunByName("thermal-trojan", 0.02)
	if err != nil {
		t.Fatal(err)
	}
	runner.SetJobs(6)
	parallel, err := RunByName("thermal-trojan", 0.02)
	if err != nil {
		t.Fatal(err)
	}
	if serial.String() != parallel.String() {
		t.Fatalf("thermal-trojan output differs between -jobs 1 and -jobs 6:\n--- jobs=1 ---\n%s\n--- jobs=6 ---\n%s", serial, parallel)
	}
}
