package scenario

import (
	"reflect"
	"sort"
	"testing"
)

// shardTestSpec is a small independent fleet with enough machines to split
// three ways unevenly.
func shardTestSpec(t *testing.T) *Spec {
	t.Helper()
	spec, err := Decode([]byte(`{
		"name": "shard-test",
		"duration_s": 4,
		"fleet": {"machines": 7, "base_seed": 42},
		"machine": {"cores": 2},
		"workload": [{"kind": "burn", "threads": 2}]
	}`))
	if err != nil {
		t.Fatal(err)
	}
	return spec
}

// TestShardUnionMatchesFullRun is the distributed tier's correctness anchor:
// the union of disjoint shard runs must equal the full-fleet run, machine by
// machine, exactly.
func TestShardUnionMatchesFullRun(t *testing.T) {
	spec := shardTestSpec(t)
	full, err := RunOpts(spec, 1, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}

	var union []MachineResult
	for _, r := range [][2]int{{0, 3}, {3, 5}, {5, 7}} {
		part, err := RunShard(spec, 1, r[0], r[1], nil, RunOptions{})
		if err != nil {
			t.Fatalf("shard [%d,%d): %v", r[0], r[1], err)
		}
		union = append(union, part...)
	}
	sort.Slice(union, func(a, b int) bool { return union[a].Index < union[b].Index })
	if len(union) != len(full.Machines) {
		t.Fatalf("shard union has %d machines, full run %d", len(union), len(full.Machines))
	}
	for i := range union {
		if !reflect.DeepEqual(union[i], full.Machines[i]) {
			t.Fatalf("machine %d diverged between sharded and full run:\nshard: %+v\nfull:  %+v",
				i, union[i], full.Machines[i])
		}
	}
}

// TestShardSkipOmitsDelivered pins the redispatch contract: indices in skip
// are neither re-simulated nor re-returned, and the remainder is identical to
// a fresh shard run of the missing machines.
func TestShardSkipOmitsDelivered(t *testing.T) {
	spec := shardTestSpec(t)
	fresh, err := RunShard(spec, 1, 1, 6, nil, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	resumed, err := RunShard(spec, 1, 1, 6, []int{2, 4}, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	var want []MachineResult
	for _, m := range fresh {
		if m.Index != 2 && m.Index != 4 {
			want = append(want, m)
		}
	}
	if !reflect.DeepEqual(resumed, want) {
		t.Fatalf("resumed shard returned %d machines, want %d identical to fresh run minus skips",
			len(resumed), len(want))
	}
	// A fully-skipped shard is a no-op, not an error (the lease watchdog can
	// redispatch a shard whose last result raced the revoke).
	none, err := RunShard(spec, 1, 1, 3, []int{1, 2}, RunOptions{})
	if err != nil || len(none) != 0 {
		t.Fatalf("fully-skipped shard: got %d results, err %v", len(none), err)
	}
}

func TestShardRejectsBadRanges(t *testing.T) {
	spec := shardTestSpec(t)
	for _, r := range [][2]int{{-1, 2}, {0, 8}, {3, 3}, {5, 2}} {
		if _, err := RunShard(spec, 1, r[0], r[1], nil, RunOptions{}); err == nil {
			t.Fatalf("shard [%d,%d) accepted; want range error", r[0], r[1])
		}
	}
	sched, err := Decode([]byte(`{
		"name": "shard-sched",
		"duration_s": 4,
		"fleet": {"machines": 2, "base_seed": 1},
		"machine": {"cores": 2},
		"scheduler": {"round_s": 2, "jobs": [{"name": "j", "rate": 0.5, "work_s": 1}]}
	}`))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunShard(sched, 1, 0, 2, nil, RunOptions{}); err == nil {
		t.Fatal("scheduled fleet sharded; want machine-coupling error")
	}
}
