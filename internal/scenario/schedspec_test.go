package scenario

import (
	"strings"
	"testing"
)

func schedSpec() *Spec {
	return &Spec{
		Name:  "sched-unit",
		Title: "t", Summary: "s",
		Fleet:     FleetSpec{Machines: 4, BaseSeed: 1},
		DurationS: 100,
		Scheduler: &SchedulerSpec{
			Policy: PlaceCoolestFirst,
			Jobs: []JobClassSpec{
				{Name: "batch", Rate: 0.5, Threads: 2, WorkS: 10},
			},
		},
	}
}

func TestSchedulerSpecValid(t *testing.T) {
	if err := schedSpec().Validate(); err != nil {
		t.Fatal(err)
	}
	// A scheduler block stands in for the workload requirement.
	s := schedSpec()
	s.Workload = nil
	if err := s.Validate(); err != nil {
		t.Fatalf("scheduler-only spec rejected: %v", err)
	}
}

func TestSchedulerSpecRejections(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Spec)
		want string
	}{
		{"unknown policy", func(s *Spec) { s.Scheduler.Policy = "hottest-first" }, "unknown placement policy"},
		{"no job classes", func(s *Spec) { s.Scheduler.Jobs = nil }, "at least one job class"},
		{"zero rate", func(s *Spec) { s.Scheduler.Jobs[0].Rate = 0 }, "rate"},
		{"huge rate", func(s *Spec) { s.Scheduler.Jobs[0].Rate = 1e6 }, "rate"},
		{"zero work", func(s *Spec) { s.Scheduler.Jobs[0].WorkS = 0 }, "work"},
		{"spread >= 1", func(s *Spec) { s.Scheduler.Jobs[0].WorkSpread = 1 }, "spread"},
		{"negative round", func(s *Spec) { s.Scheduler.RoundS = -1 }, "round"},
		{"bad migration trigger", func(s *Spec) { s.Scheduler.Migration.TriggerC = 200 }, "trigger"},
		{"bad max moves", func(s *Spec) { s.Scheduler.Migration.MaxMovesPerRound = 100 }, "max moves"},
		{"bad arrival", func(s *Spec) { s.Scheduler.Jobs[0].Arrival.Pattern = "lumpy" }, "arrival pattern"},
		{"bad window", func(s *Spec) {
			s.Scheduler.Jobs[0].Arrival = ArrivalSpec{Pattern: ArrivalWindow, StartFrac: 0.9, EndFrac: 0.1}
		}, "window"},
	}
	for _, c := range cases {
		s := schedSpec()
		c.mut(s)
		err := s.Validate()
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: err = %v, want mention of %q", c.name, err, c.want)
		}
	}
}

func TestSchedulerSpecJobEnvelopesAllowAnyPattern(t *testing.T) {
	// Component envelopes are restricted to burn/spec kinds; job-class rate
	// envelopes are not kind-bound, so diurnal and window both validate.
	s := schedSpec()
	s.Scheduler.Jobs[0].Arrival = ArrivalSpec{Pattern: ArrivalDiurnal, MinLoad: 0.2}
	if err := s.Validate(); err != nil {
		t.Fatalf("diurnal job envelope rejected: %v", err)
	}
	s.Scheduler.Jobs[0].Arrival = ArrivalSpec{Pattern: ArrivalWindow, StartFrac: 0.2, EndFrac: 0.6}
	if err := s.Validate(); err != nil {
		t.Fatalf("window job envelope rejected: %v", err)
	}
}

func TestCloneDeepCopiesSchedulerBlock(t *testing.T) {
	s := schedSpec()
	c := s.Clone()
	c.Scheduler.Jobs[0].Rate = 99
	c.Scheduler.Policy = PlaceRandom
	if s.Scheduler.Jobs[0].Rate == 99 || s.Scheduler.Policy == PlaceRandom {
		t.Fatal("Clone shares the scheduler block with the original")
	}
}

func TestRunRejectsSchedulerSpecs(t *testing.T) {
	_, err := Run(schedSpec(), 0.05)
	if err == nil || !strings.Contains(err.Error(), "fleetsched") {
		t.Fatalf("Run on a scheduler spec: err = %v, want routing guidance", err)
	}
}

func TestDecodeSchedulerBlock(t *testing.T) {
	spec, err := Decode([]byte(`{
		"name": "json-sched", "title": "t", "summary": "s",
		"fleet": {"machines": 2, "base_seed": 5},
		"duration_s": 60,
		"scheduler": {
			"policy": "headroom",
			"round_s": 1,
			"jobs": [{"name": "web", "rate": 0.2, "work_s": 5, "threads": 1}],
			"migration": {"enabled": true, "trigger_c": 50}
		}
	}`))
	if err != nil {
		t.Fatal(err)
	}
	if spec.Scheduler == nil || spec.Scheduler.Policy != PlaceHeadroom ||
		!spec.Scheduler.Migration.Enabled || spec.Scheduler.Migration.TriggerC != 50 {
		t.Fatalf("decoded scheduler block = %+v", spec.Scheduler)
	}
}
