package scenario

import (
	"fmt"
	"testing"
)

// benchScenario runs the 24-machine fleet-diurnal scenario end to end under
// the given integrator; one iteration is a whole fleet run across the
// runner pool.
func benchScenario(b *testing.B, integrator string) {
	b.Helper()
	const benchScale = 0.15
	spec, ok := Get("fleet-diurnal")
	if !ok {
		b.Fatal("fleet-diurnal missing from the library")
	}
	pinned := *spec
	pinned.Machine.Integrator = integrator
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := Run(&pinned, benchScale)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 && testing.Verbose() {
			fmt.Printf("\n==== scenario fleet-diurnal [%s] @ scale %v ====\n%s", integrator, benchScale, res)
		}
	}
}

// BenchmarkFleetScenario measures the fleet engine under both integrators:
// "leap" is the engine default (the quiescence-leaping propagator), "exact"
// the byte-identical step-by-step kernel kept for comparison.
// scripts/bench.sh records both in BENCH_results.json so the leap speedup is
// tracked alongside the exact baseline.
func BenchmarkFleetScenario(b *testing.B) {
	b.Run("integrator=leap", func(b *testing.B) { benchScenario(b, "leap") })
	b.Run("integrator=exact", func(b *testing.B) { benchScenario(b, "exact") })
}
