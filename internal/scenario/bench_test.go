package scenario

import (
	"fmt"
	"testing"
)

// BenchmarkFleetScenario measures the fleet engine end to end: one iteration
// runs the 24-machine fleet-diurnal scenario at bench scale across the
// runner pool. scripts/bench.sh records it in BENCH_results.json so the
// scenario path's performance is tracked alongside the paper harnesses.
func BenchmarkFleetScenario(b *testing.B) {
	const benchScale = 0.15
	for i := 0; i < b.N; i++ {
		res, err := RunByName("fleet-diurnal", benchScale)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			fmt.Printf("\n==== scenario fleet-diurnal @ scale %v ====\n%s", benchScale, res)
		}
	}
}
