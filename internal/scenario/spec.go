// Package scenario is the fleet-scale scenario engine: it turns declarative
// scenario specifications — machine topology, a workload mix with arrival
// patterns, a DTM policy, a duration, and a fleet size — into trial lists
// fanned across the deterministic runner pool, and aggregates the
// per-machine outcomes into fleet-level metrics (temperature percentiles
// across machines, total idle-injection overhead, thermal-violation counts).
//
// The paper's harnesses (internal/experiments) replay fixed evaluations of a
// single testbed; scenarios generalise the same simulator to shapes the
// paper never ran: diurnal datacenter load, flash crowds against the web
// workload, MATTER-style adversarial thermal trojans, multi-tenant
// colocation, and fleet-wide cooling emergencies. CoMeT's whole-system
// simulation and MATTER's adversarial thermal workloads (see PAPERS.md)
// motivate the two axes of growth — scale and adversity.
//
// Determinism carries over from the runner contract: every machine in a
// fleet derives its seed from the scenario's base seed and its own index,
// never from a shared stream, so fleet output is byte-identical at any
// -jobs level.
package scenario

import (
	"encoding/json"
	"fmt"

	"repro/internal/machine"
	"repro/internal/workload"
)

// Spec declares one scenario. The zero value is invalid; fill the fields and
// Validate, or Decode from JSON. All durations are virtual seconds at scale
// 1.0 — the engine scales them the way the experiment harnesses scale the
// paper's run lengths.
type Spec struct {
	Name    string `json:"name"`
	Title   string `json:"title"`
	Summary string `json:"summary"`

	Fleet    FleetSpec       `json:"fleet"`
	Machine  MachineSpec     `json:"machine"`
	Workload []ComponentSpec `json:"workload"`
	Policy   PolicySpec      `json:"policy"`

	// Scheduler, when present, turns the fleet into a coordinated cluster:
	// job arrival streams routed across machines by a placement policy (see
	// SchedulerSpec). Such scenarios run through internal/fleetsched's
	// cross-machine engine instead of the independent per-machine path, and
	// the Workload components (if any) become per-machine background load.
	Scheduler *SchedulerSpec `json:"scheduler,omitempty"`

	// DurationS is the per-machine run length in virtual seconds at scale
	// 1.0; WarmupFrac is the leading fraction excluded from every metric.
	DurationS  float64 `json:"duration_s"`
	WarmupFrac float64 `json:"warmup_frac"`

	// ViolationC is the junction temperature counted as a thermal
	// violation; 0 selects the default of 70 °C (comfortably below the
	// 85 °C TM1 trip, the operating band a preventive system defends).
	ViolationC float64 `json:"violation_c"`
}

// DefaultViolationC is the violation threshold used when a spec leaves
// ViolationC zero.
const DefaultViolationC = 70.0

// FleetSpec sizes the simulated fleet.
type FleetSpec struct {
	// Machines is the number of independent machines; each is one trial
	// for the runner pool.
	Machines int `json:"machines"`
	// BaseSeed roots the per-machine seed derivation (see MachineSeed).
	BaseSeed uint64 `json:"base_seed"`
	// FanSpread models rack-position and manufacturing airflow variance:
	// machine i's fan factor is scaled by 1 + FanSpread·u_i with u_i a
	// deterministic uniform draw from the machine's seed. Zero gives a
	// homogeneous fleet.
	FanSpread float64 `json:"fan_spread"`
	// AmbientSpreadC models hot-aisle/cold-aisle placement: machine i's
	// ambient is raised by AmbientSpreadC·v_i °C with v_i a deterministic
	// uniform draw from the machine's seed. Unlike fan spread (which acts
	// through the slow heatsink node), aisle position shifts the whole
	// thermal stack immediately — the heterogeneity a temperature-aware
	// placement policy exploits. Zero gives a uniform room.
	AmbientSpreadC float64 `json:"ambient_spread_c"`
}

// MachineSpec overrides testbed parameters; zero fields keep the calibrated
// paper machine (quad-core Xeon E5520, full-speed fans, 25.2 °C ambient).
type MachineSpec struct {
	Cores       int     `json:"cores"`
	FanFactor   float64 `json:"fan_factor"`
	AmbientC    float64 `json:"ambient_c"`
	SMTContexts int     `json:"smt_contexts"`
	// Integrator pins the thermal integrator for this scenario: "exact"
	// (byte-identical step-by-step kernel) or "leap" (the
	// quiescence-leaping propagator, tolerance-mode). Empty defers to the
	// process-wide -integrator override and then to the engine default of
	// leap — scenario metrics are tick-sampled aggregates, exactly the
	// shape the leap tolerance is calibrated for.
	Integrator string `json:"integrator,omitempty"`
}

// Component kinds.
const (
	KindBurn      = "burn"      // cpuburn: infinite full-power loops
	KindSpec      = "spec"      // a SPEC CPU2006 proxy benchmark
	KindPeriodic  = "periodic"  // compute/sleep square wave (Figure 5's cool task)
	KindTrojan    = "trojan"    // MATTER-style adversarial thermal burst
	KindWebserver = "webserver" // the §3.7 closed-loop web workload
)

// Arrival patterns.
const (
	ArrivalSteady  = "steady"  // constant load (the default)
	ArrivalDiurnal = "diurnal" // sinusoidal day/night envelope
	ArrivalWindow  = "window"  // active only inside [StartFrac, EndFrac)
)

// ComponentSpec is one element of the workload mix.
type ComponentSpec struct {
	Kind string `json:"kind"`
	// Threads is the thread count for compute kinds; 0 means one per
	// scheduler core.
	Threads int `json:"threads"`
	// PowerFactor overrides the activity factor; 0 keeps the kind's
	// default (1.0 for burn/trojan, the calibrated factor for spec).
	PowerFactor float64 `json:"power_factor"`

	// Benchmark names the SPEC proxy (kind "spec").
	Benchmark string `json:"benchmark"`

	// BurstS/PauseS parameterise kind "periodic": compute BurstS
	// reference-seconds, sleep PauseS seconds, repeat.
	BurstS float64 `json:"burst_s"`
	PauseS float64 `json:"pause_s"`

	// PeriodMS/Duty parameterise kind "trojan": a full-power square wave
	// with the given period (tuned near the junction's ≈30 ms thermal
	// time constant for maximum peak-per-utilisation) and on-fraction.
	PeriodMS float64 `json:"period_ms"`
	Duty     float64 `json:"duty"`

	// Connections/Workers override the webserver defaults (kind
	// "webserver"); 0 keeps the paper's 440/16.
	Connections int `json:"connections"`
	Workers     int `json:"workers"`

	Arrival ArrivalSpec `json:"arrival"`
}

// ArrivalSpec shapes a compute component's load over time.
type ArrivalSpec struct {
	// Pattern is one of the Arrival* constants; empty means steady.
	Pattern string `json:"pattern"`
	// MinLoad is the diurnal trough as a fraction of full load.
	MinLoad float64 `json:"min_load"`
	// PeriodS is the diurnal period in virtual seconds at scale 1.0;
	// 0 uses the scenario duration (one compressed day per run).
	PeriodS float64 `json:"period_s"`
	// StartFrac/EndFrac bound the window pattern as fractions of the
	// full run duration.
	StartFrac float64 `json:"start_frac"`
	EndFrac   float64 `json:"end_frac"`
}

// Policy kinds.
const (
	PolicyNone       = "none"
	PolicyDimetrodon = "dimetrodon"
	PolicyVFS        = "vfs"
	PolicyP4TCC      = "p4tcc"
	PolicyAdaptive   = "adaptive"
)

// PolicySpec selects the DTM technique applied to every machine.
type PolicySpec struct {
	Kind string `json:"kind"`
	// P/LMS/Deterministic parameterise kind "dimetrodon".
	P             float64 `json:"p"`
	LMS           float64 `json:"l_ms"`
	Deterministic bool    `json:"deterministic"`
	// PState selects the pinned operating point for kind "vfs".
	PState int `json:"pstate"`
	// Duty is the delivered-clock fraction for kind "p4tcc".
	Duty float64 `json:"duty"`
	// TargetC is the adaptive controller's setpoint; 0 derives it (5 °C
	// below the TM1 trip when TM1 is armed, otherwise 60 °C).
	TargetC float64 `json:"target_c"`
	// TM1 arms the reactive thermal-monitor backstop alongside the
	// policy; its trips and throttled time are reported per machine.
	TM1 bool `json:"tm1"`
}

// Clone returns an independent copy of the spec (the Workload slice and the
// optional Scheduler block are the reference fields).
func (s *Spec) Clone() *Spec {
	c := *s
	c.Workload = append([]ComponentSpec(nil), s.Workload...)
	if s.Scheduler != nil {
		sc := *s.Scheduler
		sc.Jobs = append([]JobClassSpec(nil), s.Scheduler.Jobs...)
		c.Scheduler = &sc
	}
	return &c
}

// Decode parses a JSON scenario spec and validates it. Malformed input
// returns an error; it never panics (FuzzScenarioSpec pins this).
func Decode(data []byte) (*Spec, error) {
	var s Spec
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, fmt.Errorf("scenario: decoding spec: %w", err)
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// Hard bounds keeping compiled scenarios finite. They exist so a hostile or
// corrupted spec cannot allocate an unbounded fleet or spin the simulator
// forever — Validate enforces them before Compile builds anything.
const (
	MaxMachines   = 4096
	MaxComponents = 32
	MaxThreads    = 256
	MaxDurationS  = 24 * 3600
	MaxCores      = 64
)

// Validate reports the first problem with the spec.
func (s *Spec) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("scenario: spec needs a name")
	}
	for _, r := range s.Name {
		if !(r >= 'a' && r <= 'z' || r >= '0' && r <= '9' || r == '-') {
			return fmt.Errorf("scenario %q: name must be lowercase [a-z0-9-]", s.Name)
		}
	}
	if s.Fleet.Machines < 1 || s.Fleet.Machines > MaxMachines {
		return fmt.Errorf("scenario %q: fleet of %d machines outside [1,%d]", s.Name, s.Fleet.Machines, MaxMachines)
	}
	if s.Fleet.FanSpread < 0 || s.Fleet.FanSpread > 4 {
		return fmt.Errorf("scenario %q: fan spread %v outside [0,4]", s.Name, s.Fleet.FanSpread)
	}
	if s.Fleet.AmbientSpreadC < 0 || s.Fleet.AmbientSpreadC > 20 {
		return fmt.Errorf("scenario %q: ambient spread %v°C outside [0,20]", s.Name, s.Fleet.AmbientSpreadC)
	}
	if s.Machine.Cores < 0 || s.Machine.Cores > MaxCores {
		return fmt.Errorf("scenario %q: %d cores outside [0,%d]", s.Name, s.Machine.Cores, MaxCores)
	}
	if s.Machine.FanFactor < 0 || s.Machine.FanFactor > 16 {
		return fmt.Errorf("scenario %q: fan factor %v outside [0,16]", s.Name, s.Machine.FanFactor)
	}
	if s.Machine.AmbientC < 0 || s.Machine.AmbientC > 60 {
		return fmt.Errorf("scenario %q: ambient %v°C outside [0,60]", s.Name, s.Machine.AmbientC)
	}
	if s.Machine.SMTContexts < 0 || s.Machine.SMTContexts > 2 {
		return fmt.Errorf("scenario %q: SMT contexts %d outside [0,2]", s.Name, s.Machine.SMTContexts)
	}
	if !machine.ValidIntegrator(s.Machine.Integrator) {
		return fmt.Errorf("scenario %q: unknown integrator %q (want %q or %q)",
			s.Name, s.Machine.Integrator, machine.IntegratorExact, machine.IntegratorLeap)
	}
	if !(s.DurationS > 0) || s.DurationS > MaxDurationS {
		return fmt.Errorf("scenario %q: duration %vs outside (0,%d]", s.Name, s.DurationS, MaxDurationS)
	}
	if s.WarmupFrac < 0 || s.WarmupFrac > 0.9 {
		return fmt.Errorf("scenario %q: warmup fraction %v outside [0,0.9]", s.Name, s.WarmupFrac)
	}
	if s.ViolationC < 0 || s.ViolationC > 150 {
		return fmt.Errorf("scenario %q: violation threshold %v°C outside [0,150]", s.Name, s.ViolationC)
	}
	if len(s.Workload) == 0 && s.Scheduler == nil {
		return fmt.Errorf("scenario %q: needs at least one workload component", s.Name)
	}
	if len(s.Workload) > MaxComponents {
		return fmt.Errorf("scenario %q: %d components exceeds %d", s.Name, len(s.Workload), MaxComponents)
	}
	webs := 0
	for i := range s.Workload {
		if err := s.Workload[i].validate(); err != nil {
			return fmt.Errorf("scenario %q component %d: %w", s.Name, i, err)
		}
		if s.Workload[i].Kind == KindWebserver {
			webs++
		}
	}
	if webs > 1 {
		return fmt.Errorf("scenario %q: at most one webserver component", s.Name)
	}
	if err := s.Policy.validate(); err != nil {
		return fmt.Errorf("scenario %q policy: %w", s.Name, err)
	}
	if s.Scheduler != nil {
		if err := s.Scheduler.validate(); err != nil {
			return fmt.Errorf("scenario %q scheduler: %w", s.Name, err)
		}
	}
	return nil
}

func (c *ComponentSpec) validate() error {
	if c.Threads < 0 || c.Threads > MaxThreads {
		return fmt.Errorf("threads %d outside [0,%d]", c.Threads, MaxThreads)
	}
	if c.PowerFactor < 0 || c.PowerFactor > 1.5 {
		return fmt.Errorf("power factor %v outside [0,1.5]", c.PowerFactor)
	}
	switch c.Kind {
	case KindBurn:
	case KindSpec:
		if _, err := workload.FindSpec(c.Benchmark); err != nil {
			return err
		}
	case KindPeriodic:
		if !(c.BurstS > 0) || c.BurstS > 3600 {
			return fmt.Errorf("periodic burst %vs outside (0,3600]", c.BurstS)
		}
		if !(c.PauseS > 0) || c.PauseS > 3600 {
			return fmt.Errorf("periodic pause %vs outside (0,3600]", c.PauseS)
		}
	case KindTrojan:
		if !(c.PeriodMS >= 0.1) || c.PeriodMS > 60000 {
			return fmt.Errorf("trojan period %vms outside [0.1,60000]", c.PeriodMS)
		}
		if !(c.Duty > 0) || c.Duty > 1 {
			return fmt.Errorf("trojan duty %v outside (0,1]", c.Duty)
		}
	case KindWebserver:
		if c.Connections < 0 || c.Connections > 10000 {
			return fmt.Errorf("connections %d outside [0,10000]", c.Connections)
		}
		if c.Workers < 0 || c.Workers > 512 {
			return fmt.Errorf("workers %d outside [0,512]", c.Workers)
		}
	default:
		return fmt.Errorf("unknown kind %q", c.Kind)
	}
	return c.Arrival.validate(c.Kind)
}

func (a *ArrivalSpec) validate(kind string) error {
	if (a.Pattern == ArrivalDiurnal || a.Pattern == ArrivalWindow) &&
		kind != KindBurn && kind != KindSpec {
		return fmt.Errorf("%s arrival only applies to burn/spec components, not %q", a.Pattern, kind)
	}
	return a.validateShape()
}

func (p *PolicySpec) validate() error {
	switch p.Kind {
	case "", PolicyNone:
	case PolicyDimetrodon:
		if !(p.P > 0) || p.P >= 1 {
			return fmt.Errorf("dimetrodon p %v outside (0,1)", p.P)
		}
		if !(p.LMS > 0) || p.LMS > 10000 {
			return fmt.Errorf("dimetrodon L %vms outside (0,10000]", p.LMS)
		}
	case PolicyVFS:
		if p.PState < 0 || p.PState > 32 {
			return fmt.Errorf("vfs P-state %d outside [0,32]", p.PState)
		}
	case PolicyP4TCC:
		if !(p.Duty > 0) || p.Duty > 1 {
			return fmt.Errorf("p4tcc duty %v outside (0,1]", p.Duty)
		}
	case PolicyAdaptive:
		if p.TargetC < 0 || p.TargetC > 150 {
			return fmt.Errorf("adaptive target %v°C outside [0,150]", p.TargetC)
		}
	default:
		return fmt.Errorf("unknown policy kind %q", p.Kind)
	}
	return nil
}
