package scenario

import "testing"

// BenchmarkMegaFleet measures the batched mega path against the independent
// per-machine engine on the same spec. The batched side runs fleet-diurnal
// tiled to 100k machines (24 distinct simulations, shared ladders, cross-run
// dedup across iterations); the per-machine side runs the 24 independent
// machine graphs directly. Both report ns/machine — per fleet member
// summarised, the unit the mega path is built to amortise — and the batched
// side additionally reports the cross-run cache hit rate. scripts/bench.sh
// records all of it in BENCH_results.json.
func BenchmarkMegaFleet(b *testing.B) {
	const megaScale = 0.05
	spec, ok := Get("fleet-diurnal")
	if !ok {
		b.Fatal("fleet-diurnal missing from the library")
	}

	b.Run("batched-100k", func(b *testing.B) {
		const total = 100_000
		ResetBatchCache()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := RunMega(spec, total, megaScale); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/total, "ns/machine")
		hits, misses, _ := BatchCacheStats()
		if lookups := hits + misses; lookups > 0 {
			b.ReportMetric(100*float64(hits)/float64(lookups), "dedup-hit-pct")
		}
	})

	b.Run("permachine", func(b *testing.B) {
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := Run(spec, megaScale); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(spec.Fleet.Machines), "ns/machine")
	})
}
