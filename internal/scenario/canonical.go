package scenario

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"sort"

	"repro/internal/machine"
	"repro/internal/webserver"
	"repro/internal/workload"
)

// This file defines the scenario spec's canonical serialization — the
// content address the service daemon's result cache keys by. Two JSON specs
// that compile to identical fleets must canonicalise to identical bytes, so
// the canonical form (a) makes every documented default explicit and (b)
// emits JSON keys in sorted order regardless of Go struct layout. Hash
// stability across input field-order permutations and default spellings is
// pinned by canonical_test.go.

// Normalize returns a copy of the spec with every documented default made
// explicit: the violation threshold, the DTM policy kind, fan factor,
// ambient, core/SMT topology, per-component thread counts, power factors and
// arrival patterns, webserver sizing, and the scheduler block's policy and
// round length. Fields whose resolution depends on process-wide state (the
// -integrator override) are left as declared; callers that cache across
// integrator settings must fold the effective mode into their key
// separately, as the service daemon does.
func (s *Spec) Normalize() *Spec {
	c := s.Clone()
	def := machine.DefaultConfig()
	if c.ViolationC == 0 {
		c.ViolationC = DefaultViolationC
	}
	if c.Policy.Kind == "" {
		c.Policy.Kind = PolicyNone
	}
	if c.Machine.FanFactor == 0 {
		c.Machine.FanFactor = def.FanFactor
	}
	if c.Machine.AmbientC == 0 {
		c.Machine.AmbientC = float64(def.Ambient)
	}
	if c.Machine.Cores == 0 {
		c.Machine.Cores = def.Model.NumCores
	}
	if c.Machine.SMTContexts <= 1 {
		c.Machine.SMTContexts = def.SMTContexts
	}
	schedCores := c.Machine.Cores * c.Machine.SMTContexts
	webDef := webserver.DefaultConfig()
	for i := range c.Workload {
		w := &c.Workload[i]
		if w.Arrival.Pattern == "" {
			w.Arrival.Pattern = ArrivalSteady
		}
		switch w.Kind {
		case KindWebserver:
			if w.Connections == 0 {
				w.Connections = webDef.Connections
			}
			if w.Workers == 0 {
				w.Workers = webDef.Workers
			}
			continue // webserver sizes itself; Threads/PowerFactor unused
		case KindSpec:
			if w.PowerFactor == 0 {
				if spec, err := workload.FindSpec(w.Benchmark); err == nil {
					w.PowerFactor = spec.PowerFactor
				}
			}
		default:
			if w.PowerFactor == 0 {
				w.PowerFactor = 1
			}
		}
		if w.Threads == 0 {
			w.Threads = schedCores
		}
	}
	if c.Scheduler != nil {
		ss := c.Scheduler
		if ss.Policy == "" {
			ss.Policy = PlaceCoolestFirst
		}
		if ss.RoundS == 0 {
			ss.RoundS = DefaultRoundS
		}
		for i := range ss.Jobs {
			j := &ss.Jobs[i]
			if j.Threads == 0 {
				j.Threads = 1
			}
			if j.PowerFactor == 0 {
				j.PowerFactor = 1
			}
			if j.Arrival.Pattern == "" {
				j.Arrival.Pattern = ArrivalSteady
			}
		}
		if ss.Migration.Enabled {
			if ss.Migration.TriggerC == 0 {
				ss.Migration.TriggerC = c.ViolationC
			}
			if ss.Migration.MaxMovesPerRound == 0 {
				ss.Migration.MaxMovesPerRound = 1
			}
		}
	}
	return c
}

// Canonical returns the spec's canonical serialization: the Normalize form
// marshalled as compact JSON with every object's keys in sorted order. The
// result is a pure function of the simulation the spec describes — input
// field ordering and omitted-default spellings do not change it.
func (s *Spec) Canonical() ([]byte, error) {
	raw, err := json.Marshal(s.Normalize())
	if err != nil {
		return nil, fmt.Errorf("scenario: canonicalising %q: %w", s.Name, err)
	}
	// Round-trip through a generic tree to sort keys; UseNumber keeps the
	// numeric literals exactly as Go's encoder produced them.
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.UseNumber()
	var v any
	if err := dec.Decode(&v); err != nil {
		return nil, fmt.Errorf("scenario: canonicalising %q: %w", s.Name, err)
	}
	var b bytes.Buffer
	writeCanonical(&b, v)
	return b.Bytes(), nil
}

// Hash returns the hex SHA-256 of the canonical serialization — the
// scenario's content address.
func (s *Spec) Hash() (string, error) {
	c, err := s.Canonical()
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(c)
	return hex.EncodeToString(sum[:]), nil
}

// writeCanonical emits one JSON value with sorted object keys and no
// insignificant whitespace.
func writeCanonical(b *bytes.Buffer, v any) {
	switch t := v.(type) {
	case map[string]any:
		keys := make([]string, 0, len(t))
		for k := range t {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		b.WriteByte('{')
		for i, k := range keys {
			if i > 0 {
				b.WriteByte(',')
			}
			kb, _ := json.Marshal(k)
			b.Write(kb)
			b.WriteByte(':')
			writeCanonical(b, t[k])
		}
		b.WriteByte('}')
	case []any:
		b.WriteByte('[')
		for i, e := range t {
			if i > 0 {
				b.WriteByte(',')
			}
			writeCanonical(b, e)
		}
		b.WriteByte(']')
	case json.Number:
		b.WriteString(string(t))
	default:
		eb, _ := json.Marshal(t)
		b.Write(eb)
	}
}
