package scenario

import (
	"encoding/json"
	"testing"
)

// FuzzScenarioSpec pins the decoder/validator contract: arbitrary bytes must
// either decode into a spec that validates and compiles, or return an error
// — never panic and never produce an unbounded compilation. Run it as a
// fuzzer with:
//
//	go test -fuzz FuzzScenarioSpec ./internal/scenario
//
// Under plain `go test` the seed corpus below runs as regression cases.
func FuzzScenarioSpec(f *testing.F) {
	// Valid minimal spec and one of each component/policy shape.
	f.Add([]byte(`{"name":"a","fleet":{"machines":1},"workload":[{"kind":"burn"}],"duration_s":10}`))
	f.Add([]byte(`{"name":"web-1","fleet":{"machines":2,"base_seed":9},"workload":[{"kind":"webserver","connections":10,"workers":2}],"policy":{"kind":"dimetrodon","p":0.5,"l_ms":10},"duration_s":30,"warmup_frac":0.1}`))
	f.Add([]byte(`{"name":"t","fleet":{"machines":3,"fan_spread":0.2},"machine":{"cores":2,"fan_factor":2.4},"workload":[{"kind":"trojan","period_ms":60,"duty":0.5}],"policy":{"kind":"adaptive","tm1":true},"duration_s":20}`))
	f.Add([]byte(`{"name":"d","fleet":{"machines":2},"workload":[{"kind":"spec","benchmark":"gcc","arrival":{"pattern":"diurnal","min_load":0.2}}],"policy":{"kind":"vfs","pstate":3},"duration_s":40}`))
	f.Add([]byte(`{"name":"w","fleet":{"machines":2},"workload":[{"kind":"burn","arrival":{"pattern":"window","start_frac":0.2,"end_frac":0.6}},{"kind":"periodic","burst_s":0.5,"pause_s":1}],"policy":{"kind":"p4tcc","duty":0.5},"duration_s":40}`))
	// Malformed shapes: bad JSON, wrong types, out-of-range values.
	f.Add([]byte(`{`))
	f.Add([]byte(`[]`))
	f.Add([]byte(`{"name":"x"}`))
	f.Add([]byte(`{"name":"X","fleet":{"machines":1},"workload":[{"kind":"burn"}],"duration_s":10}`))
	f.Add([]byte(`{"name":"x","fleet":{"machines":1000000},"workload":[{"kind":"burn"}],"duration_s":10}`))
	f.Add([]byte(`{"name":"x","fleet":{"machines":1},"workload":[{"kind":"spec","benchmark":"nope"}],"duration_s":10}`))
	f.Add([]byte(`{"name":"x","fleet":{"machines":1},"workload":[{"kind":"burn"}],"duration_s":-5}`))
	f.Add([]byte(`{"name":"x","fleet":{"machines":1},"workload":[{"kind":"trojan","period_ms":1e300,"duty":2}],"duration_s":10}`))

	f.Fuzz(func(t *testing.T, data []byte) {
		spec, err := Decode(data)
		if err != nil {
			if spec != nil {
				t.Fatal("Decode returned a spec alongside an error")
			}
			return
		}
		// A decoded spec must re-validate and compile within bounds.
		if err := spec.Validate(); err != nil {
			t.Fatalf("Decode accepted a spec that fails Validate: %v", err)
		}
		trials := spec.Compile(0.01)
		if len(trials) != spec.Fleet.Machines || len(trials) > MaxMachines {
			t.Fatalf("compiled %d trials for %d machines", len(trials), spec.Fleet.Machines)
		}
		for i, tr := range trials {
			if tr.Seed != MachineSeed(spec.Fleet.BaseSeed, i) {
				t.Fatalf("trial %d seed not derived from identity", i)
			}
			if tr.FanFactor <= 0 {
				t.Fatalf("trial %d non-positive fan factor %v", i, tr.FanFactor)
			}
		}
		// Round-tripping the spec through JSON must stay valid.
		again, err := json.Marshal(spec)
		if err != nil {
			t.Fatalf("re-encoding a valid spec failed: %v", err)
		}
		if _, err := Decode(again); err != nil {
			t.Fatalf("round-tripped spec no longer decodes: %v", err)
		}
	})
}
