package scenario

import (
	"os"
	"strings"
	"testing"

	"repro/internal/units"
)

func readFile(t *testing.T, path string) string {
	t.Helper()
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

func TestStarterLibraryRegistered(t *testing.T) {
	want := []string{"flash-crowd", "fleet-diurnal", "multi-tenant", "thermal-trojan", "throttle-storm"}
	got := Names()
	if len(got) < len(want) {
		t.Fatalf("registry has %v, want at least %v", got, want)
	}
	for _, name := range want {
		s, ok := Get(name)
		if !ok {
			t.Errorf("starter scenario %q not registered", name)
			continue
		}
		if err := s.Validate(); err != nil {
			t.Errorf("starter scenario %q invalid: %v", name, err)
		}
	}
	// Names must come back sorted for stable CLI listings.
	for i := 1; i < len(got); i++ {
		if got[i-1] >= got[i] {
			t.Errorf("Names() not sorted: %v", got)
		}
	}
}

func TestRegisterRejectsDuplicatesAndInvalid(t *testing.T) {
	valid := &Spec{
		Name:      "fleet-diurnal", // collides with the library
		Fleet:     FleetSpec{Machines: 1},
		Workload:  []ComponentSpec{{Kind: KindBurn}},
		DurationS: 10,
	}
	if err := Register(valid); err == nil {
		t.Error("duplicate registration accepted")
	}
	if err := Register(&Spec{Name: "bad"}); err == nil {
		t.Error("invalid spec registered")
	}
}

func TestValidateRejections(t *testing.T) {
	base := func() *Spec {
		return &Spec{
			Name:      "ok",
			Fleet:     FleetSpec{Machines: 2},
			Workload:  []ComponentSpec{{Kind: KindBurn}},
			DurationS: 10,
		}
	}
	cases := []struct {
		label string
		mut   func(*Spec)
	}{
		{"empty name", func(s *Spec) { s.Name = "" }},
		{"uppercase name", func(s *Spec) { s.Name = "Bad" }},
		{"zero machines", func(s *Spec) { s.Fleet.Machines = 0 }},
		{"huge fleet", func(s *Spec) { s.Fleet.Machines = MaxMachines + 1 }},
		{"negative duration", func(s *Spec) { s.DurationS = -1 }},
		{"no workload", func(s *Spec) { s.Workload = nil }},
		{"unknown kind", func(s *Spec) { s.Workload[0].Kind = "mystery" }},
		{"unknown benchmark", func(s *Spec) { s.Workload[0] = ComponentSpec{Kind: KindSpec, Benchmark: "mcf"} }},
		{"trojan duty", func(s *Spec) { s.Workload[0] = ComponentSpec{Kind: KindTrojan, PeriodMS: 60, Duty: 1.5} }},
		{"window backwards", func(s *Spec) {
			s.Workload[0].Arrival = ArrivalSpec{Pattern: ArrivalWindow, StartFrac: 0.8, EndFrac: 0.2}
		}},
		{"diurnal on periodic", func(s *Spec) {
			s.Workload[0] = ComponentSpec{Kind: KindPeriodic, BurstS: 1, PauseS: 1,
				Arrival: ArrivalSpec{Pattern: ArrivalDiurnal}}
		}},
		{"two webservers", func(s *Spec) {
			s.Workload = []ComponentSpec{{Kind: KindWebserver}, {Kind: KindWebserver}}
		}},
		{"policy p out of range", func(s *Spec) { s.Policy = PolicySpec{Kind: PolicyDimetrodon, P: 1.2, LMS: 10} }},
		{"unknown policy", func(s *Spec) { s.Policy = PolicySpec{Kind: "magic"} }},
	}
	for _, tc := range cases {
		s := base()
		tc.mut(s)
		if err := s.Validate(); err == nil {
			t.Errorf("%s: accepted", tc.label)
		}
	}
	if err := base().Validate(); err != nil {
		t.Fatalf("base spec invalid: %v", err)
	}
}

func TestMachineSeedIsPureAndSpread(t *testing.T) {
	seen := map[uint64]bool{}
	for i := 0; i < 100; i++ {
		s := MachineSeed(42, i)
		if s != MachineSeed(42, i) {
			t.Fatal("MachineSeed not deterministic")
		}
		if seen[s] {
			t.Fatalf("seed collision at machine %d", i)
		}
		seen[s] = true
	}
	if MachineSeed(1, 0) == MachineSeed(2, 0) {
		t.Error("base seed does not reach the derivation")
	}
}

func TestCompileResolvesFanSpread(t *testing.T) {
	spec := &Spec{
		Name:      "spread",
		Fleet:     FleetSpec{Machines: 8, BaseSeed: 5, FanSpread: 0.5},
		Machine:   MachineSpec{FanFactor: 2},
		Workload:  []ComponentSpec{{Kind: KindBurn}},
		DurationS: 10,
	}
	trials := spec.Compile(1)
	distinct := map[float64]bool{}
	for _, tr := range trials {
		if tr.FanFactor < 2 || tr.FanFactor > 3 {
			t.Errorf("machine %d fan factor %v outside [2,3]", tr.Index, tr.FanFactor)
		}
		distinct[tr.FanFactor] = true
	}
	if len(distinct) < 4 {
		t.Errorf("fan spread produced only %d distinct factors", len(distinct))
	}
}

func TestRunSmallFleetEndToEnd(t *testing.T) {
	spec := &Spec{
		Name:  "mini",
		Fleet: FleetSpec{Machines: 3, BaseSeed: 11},
		Workload: []ComponentSpec{
			{Kind: KindBurn, Threads: 2},
		},
		Policy:     PolicySpec{Kind: PolicyDimetrodon, P: 0.5, LMS: 10},
		DurationS:  40,
		WarmupFrac: 0.25,
	}
	res, err := Run(spec, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Machines) != 3 {
		t.Fatalf("ran %d machines", len(res.Machines))
	}
	for _, m := range res.Machines {
		if m.MeanJunction <= m.IdleTemp {
			t.Errorf("machine %d mean %v not above idle %v under load", m.Index, m.MeanJunction, m.IdleTemp)
		}
		if m.PeakJunction < m.MeanJunction {
			t.Errorf("machine %d peak %v below mean %v", m.Index, m.PeakJunction, m.MeanJunction)
		}
		if m.Injections == 0 || m.InjectedIdleS <= 0 {
			t.Errorf("machine %d saw no injection under p=0.5", m.Index)
		}
		// p=0.5 L=10ms against the 100 ms timeslice stretches each
		// quantum by ≈ p/(1−p)·L: overhead lands near 10/110, with wide
		// per-seed variance on an underloaded machine.
		if f := m.OverheadFraction(); f < 0.02 || f > 0.3 {
			t.Errorf("machine %d overhead %v implausible for p=0.5 L=10ms", m.Index, f)
		}
	}
	if res.Fleet.TotalWorkRate <= 0 || res.Fleet.TotalPower <= 0 {
		t.Error("fleet totals empty")
	}
	if res.Fleet.MeanJunctionP50 > res.Fleet.MeanJunctionMax {
		t.Error("percentiles out of order")
	}
	out := res.String()
	for _, want := range []string{"Scenario mini", "fleet of 3 machines", "machine"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered output missing %q", want)
		}
	}
}

func TestFlashCrowdCarriesWebStats(t *testing.T) {
	res, err := RunByName("flash-crowd", 0.02)
	if err != nil {
		t.Fatal(err)
	}
	if res.Fleet.WebMachines != len(res.Machines) {
		t.Fatalf("web stats on %d of %d machines", res.Fleet.WebMachines, len(res.Machines))
	}
	for _, m := range res.Machines {
		if m.Web == nil || m.Web.Completed == 0 {
			t.Fatalf("machine %d served no requests", m.Index)
		}
	}
	if !strings.Contains(res.String(), "web QoS") {
		t.Error("rendered output missing web QoS line")
	}
}

func TestWindowArrivalConfinesWork(t *testing.T) {
	// One machine, one thread, active only in the middle fifth: work done
	// must be ≈ windowFrac × duration, not the full run.
	spec := &Spec{
		Name:  "windowed",
		Fleet: FleetSpec{Machines: 1, BaseSeed: 3},
		Workload: []ComponentSpec{
			{Kind: KindBurn, Threads: 1,
				Arrival: ArrivalSpec{Pattern: ArrivalWindow, StartFrac: 0.4, EndFrac: 0.6}},
		},
		DurationS: 100,
	}
	res, err := Run(spec, 1)
	if err != nil {
		t.Fatal(err)
	}
	total := res.Machines[0].WorkRate * res.Duration.Seconds()
	if total < 15 || total > 25 {
		t.Errorf("windowed thread did %v ref-s over %v, want ≈20", total, res.Duration)
	}
}

func TestRunUnknownScenario(t *testing.T) {
	if _, err := RunByName("no-such-fleet", 1); err == nil {
		t.Error("unknown scenario ran")
	}
}

func TestScaleFloorsDuration(t *testing.T) {
	if got := scaleSeconds(0.0001, 300); got != 2*units.Second {
		t.Errorf("floor = %v, want 2s", got)
	}
	if got := scaleSeconds(1, 300); got != 300*units.Second {
		t.Errorf("full scale = %v", got)
	}
}
