package scenario

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

// Recovered per-machine results must splice into a resumed run exactly: the
// final Result is byte-identical to an uninterrupted run's, only the missing
// machines are simulated, and OnMachine fires only for them.
func TestResumeFromCompletedMachines(t *testing.T) {
	spec, ok := Get("fleet-diurnal")
	if !ok {
		t.Fatal("fleet-diurnal not registered")
	}
	base, err := Run(spec, 0.02)
	if err != nil {
		t.Fatal(err)
	}
	want, err := json.Marshal(base.Machines)
	if err != nil {
		t.Fatal(err)
	}

	// Simulate a crash that had completed an arbitrary (non-prefix) subset.
	recovered := []MachineResult{base.Machines[0], base.Machines[2]}
	var mu sync.Mutex
	reran := map[int]bool{}
	res, err := RunOpts(spec, 0.02, RunOptions{
		Completed: recovered,
		OnMachine: func(r MachineResult) {
			mu.Lock()
			reran[r.Index] = true
			mu.Unlock()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	got, err := json.Marshal(res.Machines)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(want) {
		t.Fatal("resumed run diverged from the uninterrupted run")
	}
	if res.String() != base.String() {
		t.Fatal("rendered output diverged after resume")
	}
	if reran[0] || reran[2] {
		t.Fatalf("recovered machines were re-simulated: %v", reran)
	}
	if len(reran) != len(base.Machines)-2 {
		t.Fatalf("OnMachine fired for %d machines, want %d", len(reran), len(base.Machines)-2)
	}
}

// A checkpoint from a different spec or scale compiles to a different fleet;
// an out-of-range machine index must be rejected, not silently dropped.
func TestResumeRejectsForeignCheckpoint(t *testing.T) {
	spec, ok := Get("fleet-diurnal")
	if !ok {
		t.Fatal("fleet-diurnal not registered")
	}
	_, err := RunOpts(spec, 0.02, RunOptions{
		Completed: []MachineResult{{Index: 10_000}},
	})
	if err == nil {
		t.Fatal("out-of-range recovered machine accepted")
	}
	if !strings.Contains(err.Error(), "checkpoint") {
		t.Fatalf("error should name the checkpoint: %v", err)
	}
}
