package scenario

import (
	"fmt"
	"math"

	"repro/internal/adaptive"
	"repro/internal/dtm"
	"repro/internal/machine"
	"repro/internal/rng"
	"repro/internal/sched"
	"repro/internal/units"
	"repro/internal/webserver"
	"repro/internal/workload"
)

// MachineTrial is one fleet member's fully resolved run: everything a runner
// worker needs, including the machine's derived seed and per-machine fan
// factor. Trials share only the immutable Spec.
type MachineTrial struct {
	Spec      *Spec
	Index     int
	Seed      uint64
	FanFactor float64
	// AmbientC is this machine's resolved ambient (aisle position applied);
	// 0 keeps the testbed default.
	AmbientC float64

	Duration units.Time
	Warmup   units.Time
	Tick     units.Time
}

// MachineSeed derives fleet member i's seed from the scenario base seed.
// The golden-ratio stride decorrelates adjacent indices before the rng
// package's splitmix expansion; the result is a pure function of (base, i),
// which is what makes fleet sharding order-independent: any worker can run
// any machine and produce identical bytes.
func MachineSeed(base uint64, i int) uint64 {
	return rng.New(base + uint64(i)*0x9e3779b97f4a7c15).Uint64()
}

// scaleSeconds mirrors the experiment harnesses' duration scaling: virtual
// seconds shrink proportionally with a 2 s floor so windows never collapse.
func scaleSeconds(scale, d float64) units.Time {
	v := d * scale
	if v < 2 {
		v = 2
	}
	return units.FromSeconds(v)
}

// MetricTick is the fleet engine's polling period for peak-temperature and
// violation accounting. 100 ms resolves junction excursions (τ ≈ 30 ms at
// the junction, seconds at the package) without dominating run time. The
// fleetsched engine samples at the same tick so its per-machine metrics are
// directly comparable with unscheduled scenario runs.
const MetricTick = 100 * units.Millisecond

// Compile resolves the spec into the fleet's trial list at the given scale.
// The spec must have been validated.
func (s *Spec) Compile(scale float64) []MachineTrial {
	duration := scaleSeconds(scale, s.DurationS)
	warmup := units.FromSeconds(duration.Seconds() * s.WarmupFrac)
	trials := make([]MachineTrial, s.Fleet.Machines)
	for i := range trials {
		seed := MachineSeed(s.Fleet.BaseSeed, i)
		ff := s.Machine.FanFactor
		if ff <= 0 {
			ff = 1
		}
		// Identity draws come from the machine's own seed; the machine RNG
		// is seeded with the same value but the streams never interact (the
		// machine splits substreams off it). Draw order is fixed — fan
		// first, then aisle — so enabling one spread never re-deals the
		// other.
		idDraws := rng.New(seed)
		if s.Fleet.FanSpread > 0 {
			ff *= 1 + s.Fleet.FanSpread*idDraws.Float64()
		} else {
			idDraws.Float64()
		}
		amb := s.Machine.AmbientC
		if s.Fleet.AmbientSpreadC > 0 {
			if amb <= 0 {
				amb = float64(machine.DefaultConfig().Ambient)
			}
			amb += s.Fleet.AmbientSpreadC * idDraws.Float64()
		}
		trials[i] = MachineTrial{
			Spec: s, Index: i, Seed: seed, FanFactor: ff, AmbientC: amb,
			Duration: duration, Warmup: warmup, Tick: MetricTick,
		}
	}
	return trials
}

// violationC returns the effective violation threshold.
func (s *Spec) violationC() float64 {
	if s.ViolationC > 0 {
		return s.ViolationC
	}
	return DefaultViolationC
}

// ViolationThreshold returns the effective thermal-violation threshold in °C
// (the configured value, or the default when left zero).
func (s *Spec) ViolationThreshold() float64 { return s.violationC() }

// Build materialises the trial's machine: configuration, DTM policy (with
// the TM1 monitor when armed) and the static workload mix, leaving the
// machine at t=0 ready to run. It is the construction seam shared by the
// independent per-machine path (runMachine) and the fleetsched cross-machine
// engine, which must build identical fleet members before coordinating them.
func (t *MachineTrial) Build() (*machine.Machine, *dtm.TM1, *webserver.Server, error) {
	m := machine.New(t.machineConfig())
	tm1, err := t.applyPolicy(m)
	if err != nil {
		return nil, nil, nil, err
	}
	srv, err := t.spawn(m)
	if err != nil {
		return nil, nil, nil, err
	}
	return m, tm1, srv, nil
}

// machineConfig builds the testbed configuration for one trial.
func (t *MachineTrial) machineConfig() machine.Config {
	cfg := machine.DefaultConfig()
	cfg.Meter.Disabled = true
	cfg.Seed = t.Seed
	cfg.FanFactor = t.FanFactor
	ms := t.Spec.Machine
	if ms.Cores > 0 && ms.Cores != cfg.Model.NumCores {
		model := *cfg.Model
		model.NumCores = ms.Cores
		model.Name = fmt.Sprintf("%s ×%d-core", model.Name, ms.Cores)
		cfg.Model = &model
	}
	if t.AmbientC > 0 {
		cfg.Ambient = units.Celsius(t.AmbientC)
	} else if ms.AmbientC > 0 {
		cfg.Ambient = units.Celsius(ms.AmbientC)
	}
	if ms.SMTContexts > 1 {
		cfg.SMTContexts = ms.SMTContexts
	}
	// Integrator resolution: an explicit spec field wins, then the
	// process-wide -integrator override, then the engine default of leap —
	// scenario and sched runs read only tick-sampled aggregates, never
	// intra-span state, so the leap tolerance (validated against exact by
	// the golden harness and the leap-vs-exact divergence job) applies.
	switch {
	case ms.Integrator != "":
		cfg.Integrator = ms.Integrator
	case machine.IntegratorOverride() != "":
		cfg.Integrator = "" // resolves through the override in machine.New
	default:
		cfg.Integrator = machine.IntegratorLeap
	}
	return cfg
}

// applyPolicy configures the DTM technique (and the optional TM1 backstop)
// on a freshly built machine, returning the monitor when armed.
func (t *MachineTrial) applyPolicy(m *machine.Machine) (*dtm.TM1, error) {
	p := t.Spec.Policy
	var tm1 *dtm.TM1
	tm1Cfg := dtm.DefaultTM1Config()
	if p.TM1 {
		var err error
		tm1, err = dtm.AttachTM1(m, tm1Cfg)
		if err != nil {
			return nil, err
		}
	}
	switch p.Kind {
	case "", PolicyNone:
	case PolicyDimetrodon:
		tech := dtm.Dimetrodon{P: p.P, L: units.FromMilliseconds(p.LMS), Deterministic: p.Deterministic}
		if err := tech.Apply(m); err != nil {
			return nil, err
		}
	case PolicyVFS:
		if err := (dtm.VFS{PState: p.PState}).Apply(m); err != nil {
			return nil, err
		}
	case PolicyP4TCC:
		if err := (dtm.P4TCC{Duty: p.Duty}).Apply(m); err != nil {
			return nil, err
		}
	case PolicyAdaptive:
		target := units.Celsius(p.TargetC)
		if target <= 0 {
			if p.TM1 {
				target = tm1Cfg.Trip - 5
			} else {
				target = 60
			}
		}
		if _, err := adaptive.Attach(m, adaptive.DefaultConfig(target)); err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("scenario: unknown policy kind %q", p.Kind)
	}
	return tm1, nil
}

// envelope builds a component's load envelope over virtual time; nil means
// steady full load.
func (t *MachineTrial) envelope(a ArrivalSpec) func(units.Time) float64 {
	switch a.Pattern {
	case ArrivalDiurnal:
		period := t.Duration.Seconds()
		if a.PeriodS > 0 {
			// The configured period scales with the run, one compressed
			// day staying one compressed day at any scale.
			period = t.Duration.Seconds() * a.PeriodS / t.Spec.DurationS
		}
		min := a.MinLoad
		return func(now units.Time) float64 {
			phase := 2 * math.Pi * now.Seconds() / period
			return min + (1-min)*0.5*(1-math.Cos(phase))
		}
	case ArrivalWindow:
		start := units.FromSeconds(t.Duration.Seconds() * a.StartFrac)
		end := units.FromSeconds(t.Duration.Seconds() * a.EndFrac)
		return func(now units.Time) float64 {
			if now >= start && now < end {
				return 1
			}
			return 0
		}
	default:
		return nil
	}
}

// envelopeFrame is the duty-modulation frame for shaped arrivals: long
// enough that the scheduler's 100 ms timeslices fit, short against every
// scenario duration floor.
const envelopeFrame = units.Second

// spawn populates the machine with the spec's workload mix, returning the
// webserver benchmark when one is configured.
func (t *MachineTrial) spawn(m *machine.Machine) (*webserver.Server, error) {
	schedCores := m.Config().Model.NumCores * m.Config().SMTContexts
	var srv *webserver.Server
	for ci, c := range t.Spec.Workload {
		threads := c.Threads
		if threads == 0 {
			threads = schedCores
		}
		switch c.Kind {
		case KindWebserver:
			webCfg := webserver.DefaultConfig()
			if c.Connections > 0 {
				webCfg.Connections = c.Connections
			}
			if c.Workers > 0 {
				webCfg.Workers = c.Workers
			}
			// Align the QoS window exactly with the scenario warmup, so
			// web stats exclude the same leading span as every other
			// metric (including warmup_frac = 0: count everything).
			webCfg.Warmup = t.Warmup
			srv = webserver.New(m, webCfg)
			continue
		case KindBurn, KindSpec, KindPeriodic, KindTrojan:
		default:
			return nil, fmt.Errorf("scenario: unknown component kind %q", c.Kind)
		}

		pf := c.PowerFactor
		name := c.Kind
		var fresh func() sched.Program
		switch c.Kind {
		case KindBurn:
			if pf == 0 {
				pf = 1
			}
			fresh = workload.Burn
		case KindSpec:
			spec, err := workload.FindSpec(c.Benchmark)
			if err != nil {
				return nil, err
			}
			if pf == 0 {
				pf = spec.PowerFactor
			}
			name = spec.Name
			fresh = workload.Burn
		case KindPeriodic:
			if pf == 0 {
				pf = 1
			}
			burst, pause := c.BurstS, units.FromSeconds(c.PauseS)
			fresh = func() sched.Program { return workload.PeriodicBurst(burst, pause) }
		case KindTrojan:
			if pf == 0 {
				pf = 1
			}
			period, duty := units.FromMilliseconds(c.PeriodMS), c.Duty
			fresh = func() sched.Program { return workload.Trojan(period, duty) }
		}
		// An arrival envelope replaces the component's program with a
		// duty-modulated one; validate() restricts envelopes to the
		// plain-compute kinds, for which that substitution is exact.
		if env := t.envelope(c.Arrival); env != nil {
			fresh = func() sched.Program { return workload.Modulated(env, envelopeFrame) }
		}
		for i := 0; i < threads; i++ {
			prog := fresh()
			m.Sched.Spawn(prog, sched.SpawnConfig{
				Name:        fmt.Sprintf("%s-%d-%d", name, ci, i),
				ProcessID:   ci + 1,
				PowerFactor: pf,
			})
		}
	}
	return srv, nil
}
