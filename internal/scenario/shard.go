package scenario

import (
	"fmt"

	"repro/internal/runner"
)

// RunShard executes the contiguous machine range [from, to) of the scenario's
// compiled fleet and returns those members' results, index-ordered. It is the
// worker half of the distributed tier: every trial's identity (seed, fan
// factor, duration) derives from the spec and the machine index alone, so a
// shard computed on any node is bit-identical to the same machines run
// in-process — the coordinator can merge shards from different workers, or
// re-run a shard after a worker death, without the output changing.
//
// skip lists machine indices whose results an earlier attempt already
// delivered; they are not re-simulated and do not reappear in the returned
// slice (the redispatch path after a partial stream). OnMachine fires per
// completed machine, concurrently, exactly as in RunOpts; aggregation hooks
// (Completed) are ignored — shards return raw results, the coordinator
// aggregates once over the whole fleet.
func RunShard(spec *Spec, scale float64, from, to int, skip []int, opts RunOptions) ([]MachineResult, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if spec.Scheduler != nil {
		// Scheduled fleets couple machines through placement and migration;
		// a machine-range shard would silently drop that coupling.
		return nil, fmt.Errorf("scenario %q: scheduled fleets are machine-coupled and cannot shard", spec.Name)
	}
	trials := spec.Compile(scale)
	if from < 0 || to > len(trials) || from >= to {
		return nil, fmt.Errorf("scenario %q: shard [%d,%d) outside fleet of %d machines at scale %g",
			spec.Name, from, to, len(trials), scale)
	}
	skipSet := make(map[int]bool, len(skip))
	for _, i := range skip {
		skipSet[i] = true
	}
	var sub []MachineTrial
	for _, t := range trials[from:to] {
		if !skipSet[t.Index] {
			sub = append(sub, t)
		}
	}
	if len(sub) == 0 {
		return nil, nil
	}
	results, err := runner.MapErrCtx(opts.Context, sub, func(_ int, t MachineTrial) (MachineResult, error) {
		r, err := runMachine(t, opts)
		if err == nil && opts.OnMachine != nil {
			opts.OnMachine(r)
		}
		return r, err
	})
	if err != nil {
		return nil, fmt.Errorf("scenario %q: %w", spec.Name, err)
	}
	return results, nil
}
