// Batched fleet execution.
//
// The independent per-machine path (RunOpts) treats every fleet member as an
// opaque trial: each machine rebuilds its thermal propagator ladders from
// scratch and scatters its hot state across the heap. A homogeneous fleet —
// the common case the paper's evaluation sweeps — repeats that identical work
// N times over. This file is the batched path: trials are grouped by a
// configuration fingerprint at sub-scenario granularity, one representative
// per group runs first and publishes its built propagator ladders into a
// fleet-shared read-locked cache (thermal.LadderCache), and the remaining
// machines adopt the published ladders and step out of contiguous
// structure-of-arrays scratch slabs instead of scattered allocations. Trials
// whose dynamics provably never consume randomness are simulated once per
// group and replicated across seeds; byte-identical (config, seed) pairs are
// simulated once per process via a bounded cross-run cache.
//
// The batched path is an optimisation, not a semantic fork: every simulated
// machine measures through the same measure() loop as RunOpts, shared
// propagators are bit-identical to privately built ones (pinned in
// internal/thermal), aggregation folds in strict index order, and the
// equivalence suite (batch_test.go) pins RunBatched output byte-identical to
// Run for every library scenario at any -jobs setting.
package scenario

import (
	"fmt"
	"math"
	"sync"

	"repro/internal/machine"
	"repro/internal/obs"
	"repro/internal/runner"
	"repro/internal/thermal"
	"repro/internal/units"
)

// Batched-path phase accumulators: the fingerprint/group pass and the
// representative runs that publish shared ladders. Members and duplicates
// measure through the same scenario.step/scenario.warmup phases as the
// per-machine path.
var (
	phaseGroup     = obs.RegisterPhase("scenario.group")
	phaseRepresent = obs.RegisterPhase("scenario.represent")
)

// effectiveIntegrator resolves the integrator a trial of this spec will run
// with, mirroring machineConfig's resolution (spec field, then the
// process-wide override, then the engine default of leap). It is part of the
// group fingerprint: two fleets identical on disk but run under different
// -integrator settings must not share simulated results.
func effectiveIntegrator(s *Spec) string {
	switch {
	case s.Machine.Integrator != "":
		return s.Machine.Integrator
	case machine.IntegratorOverride() != "":
		return machine.IntegratorOverride()
	default:
		return machine.IntegratorLeap
	}
}

// batchSpecHash is the spec-level half of the group fingerprint: the
// canonical content hash with the presentation fields (Name, Title, Summary)
// and the fleet-shape block zeroed. Two differently named scenarios that
// compile machines from identical specs fingerprint alike; the per-trial
// half (fan, ambient, durations) is appended by batchGroupKey.
func batchSpecHash(s *Spec) (string, error) {
	g := s.Clone()
	g.Name, g.Title, g.Summary = "", "", ""
	g.Fleet = FleetSpec{}
	return g.Hash()
}

// batchGroupKey fingerprints one trial's complete machine configuration: the
// spec content hash, the effective integrator, the exact bit patterns of the
// per-machine fan factor and ambient, and the resolved durations. Trials
// with equal group keys build byte-identical machines up to the seed, which
// is the precondition for sharing propagator ladders and for seed-invariant
// replication.
func batchGroupKey(specHash string, s *Spec, t *MachineTrial) string {
	return fmt.Sprintf("%s|%s|%016x|%016x|%d|%d|%d",
		specHash, effectiveIntegrator(s),
		math.Float64bits(t.FanFactor), math.Float64bits(t.AmbientC),
		int64(t.Duration), int64(t.Warmup), int64(t.Tick))
}

// batchTrialKey extends the group key with the seed: trials with equal trial
// keys are byte-identical simulations, deduplicated within a run and across
// runs through the process-wide cache.
func batchTrialKey(groupKey string, seed uint64) string {
	return fmt.Sprintf("%s|%016x", groupKey, seed)
}

// cachedTrial is one completed simulation in the cross-run cache: the result
// (re-stamped with the adopting trial's identity on use) and the number of
// RNG draws its dynamics consumed, which decides seed-invariant replication
// without re-simulating.
type cachedTrial struct {
	res   MachineResult
	draws uint64
}

// batchCacheMax bounds the cross-run trial cache. Entries past the bound are
// simply not stored — correctness never depends on a hit.
const batchCacheMax = 4096

// batchCache deduplicates byte-identical (config, seed) simulations across
// RunBatched calls in one process — repeated benchmark iterations and
// repeated service requests hit it. Guarded by its mutex; results are copied
// out (including the Web stats block) so cached state is never aliased.
var batchCache = struct {
	sync.Mutex
	m            map[string]cachedTrial
	hits, misses uint64
}{m: make(map[string]cachedTrial)}

func batchCacheGet(key string) (cachedTrial, bool) {
	batchCache.Lock()
	defer batchCache.Unlock()
	c, ok := batchCache.m[key]
	if ok {
		batchCache.hits++
	} else {
		batchCache.misses++
	}
	return c, ok
}

func batchCachePut(key string, c cachedTrial) {
	if c.res.Web != nil {
		w := *c.res.Web
		c.res.Web = &w
	}
	batchCache.Lock()
	defer batchCache.Unlock()
	if _, ok := batchCache.m[key]; ok {
		return
	}
	if len(batchCache.m) >= batchCacheMax {
		return
	}
	batchCache.m[key] = c
}

// BatchCacheStats reports the cross-run trial cache's lifetime hit and miss
// counts and its current size — the dedup instrumentation the mega-fleet
// benchmark records.
func BatchCacheStats() (hits, misses uint64, entries int) {
	batchCache.Lock()
	defer batchCache.Unlock()
	return batchCache.hits, batchCache.misses, len(batchCache.m)
}

// ResetBatchCache clears the cross-run trial cache and its counters.
func ResetBatchCache() {
	batchCache.Lock()
	defer batchCache.Unlock()
	batchCache.m = make(map[string]cachedTrial)
	batchCache.hits, batchCache.misses = 0, 0
}

// stampResult adapts a simulated (or cached, or replicated) result to the
// adopting trial's identity. Only the identity fields differ between trials
// that share a result; the Web stats block is deep-copied so no two results
// alias one mutable struct.
func stampResult(src MachineResult, t *MachineTrial) MachineResult {
	src.Index = t.Index
	src.Seed = t.Seed
	src.FanFactor = t.FanFactor
	if src.Web != nil {
		w := *src.Web
		src.Web = &w
	}
	return src
}

// runBatchedTrial is runMachine with the batched path's two interpositions at
// the Build seam: the network's mutable hot state is rebound onto the
// caller's structure-of-arrays scratch slab, and the fleet-shared ladder
// cache is consulted by topology key — adopting the published propagators on
// a hit, publishing this machine's built ladders on a miss. It returns the
// result, the RNG draws the dynamics consumed (the replication licence), and
// the thermal node count (the arena stride for the rest of the group).
func runBatchedTrial(t MachineTrial, opts RunOptions, ladders *thermal.LadderCache, scratch []float64) (MachineResult, uint64, int, error) {
	m, tm1, srv, err := t.Build()
	if err != nil {
		return MachineResult{}, 0, 0, err
	}
	net := m.Net.Net
	if scratch != nil {
		// Bind before adoption: SetScratch marks the network dirty and the
		// re-flatten inside AdoptShare both carves the slab and installs the
		// share.
		net.SetScratch(scratch)
	}
	key := net.TopoKey()
	ps := ladders.Get(key)
	if ps != nil {
		net.AdoptShare(ps)
	}
	draws0 := m.RNGDraws()
	res, err := measure(m, tm1, srv, t, opts)
	if err != nil {
		return MachineResult{}, 0, 0, err
	}
	if ps == nil {
		ladders.Put(key, net.ExportShare())
	}
	return res, m.RNGDraws() - draws0, net.NumNodes(), nil
}

// batchGroup is one set of trials sharing a machine configuration (equal
// group keys); members is in ascending trial order, members[0] is the
// representative.
type batchGroup struct {
	key     string
	members []int
	draws   uint64 // RNG draws the representative's dynamics consumed
	nn      int    // thermal node count (0 if the representative hit the cache)
}

// RunBatched executes the scenario's fleet through the batched engine and
// aggregates exactly like Run. Output is byte-identical to Run at any -jobs
// setting; only the work is different.
func RunBatched(spec *Spec, scale float64) (*Result, error) {
	return RunBatchedOpts(spec, scale, RunOptions{})
}

// RunBatchedOpts is RunBatched with per-run options. The streaming hooks
// constrain the engine: OnMachine fires once per fleet member with its final
// result (completion order is nondeterministic, as with RunOpts), but a
// non-nil OnTelemetry must observe every machine's in-run samples, so it
// disables result sharing entirely — every machine then simulates for real,
// still with shared propagators and arena stepping.
func RunBatchedOpts(spec *Spec, scale float64, opts RunOptions) (*Result, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if spec.Scheduler != nil {
		// Same contract as RunOpts: coupled fleets run through fleetsched.
		return nil, fmt.Errorf("scenario %q: has a scheduler block; run it through the fleetsched engine (dimctl sched run %s)", spec.Name, spec.Name)
	}
	spc := opts.Trace.Start("compile", "scenario", 0)
	ct := phaseCompile.Start()
	trials := spec.Compile(scale)
	phaseCompile.Stop(ct)
	spc.EndArgs(map[string]any{"machines": len(trials)})
	machines, err := runTrialsBatched(spec, scale, trials, opts)
	if err != nil {
		return nil, err
	}
	res := &Result{
		Spec:     spec,
		Scale:    scale,
		Duration: trials[0].Duration,
		Warmup:   trials[0].Warmup,
		Machines: machines,
	}
	spAgg := opts.Trace.Start("aggregate", "scenario", 0)
	res.Fleet = aggregate(spec, machines)
	spAgg.End()
	return res, nil
}

// runTrialsBatched is the batched engine's core: fingerprint and group the
// trials, run one representative per group to publish shared ladders and
// establish the replication licence, run the remaining distinct trials with
// adopted ladders and arena scratch, then stamp out the shared results.
func runTrialsBatched(spec *Spec, scale float64, trials []MachineTrial, opts RunOptions) ([]MachineResult, error) {
	n := len(trials)
	results := make([]MachineResult, n)
	done := make([]bool, n)

	var recovered map[int]MachineResult
	if len(opts.Completed) > 0 {
		recovered = make(map[int]MachineResult, len(opts.Completed))
		for _, r := range opts.Completed {
			if r.Index < 0 || r.Index >= n {
				return nil, fmt.Errorf("scenario %q: checkpoint carries machine %d but the spec compiles %d machines at scale %g", spec.Name, r.Index, n, scale)
			}
			recovered[r.Index] = r
		}
	}

	specHash, err := batchSpecHash(spec)
	if err != nil {
		return nil, err
	}

	// A telemetry tap must see every machine's in-run samples; sharing a
	// result would silently drop its stream, so dedup, replication and the
	// cross-run cache all stand down.
	share := opts.OnTelemetry == nil

	spGroup := opts.Trace.Start("group", "scenario", 0)
	gt := phaseGroup.Start()
	groupsByKey := make(map[string]*batchGroup)
	groupOf := make(map[int]*batchGroup, n)
	var order []*batchGroup
	trialKeys := make([]string, n)
	firstByTrialKey := make(map[string]int)
	dupOf := make([]int, n)
	for i := range trials {
		dupOf[i] = -1
		if r, ok := recovered[trials[i].Index]; ok {
			results[i] = r
			done[i] = true
			continue
		}
		gk := batchGroupKey(specHash, spec, &trials[i])
		trialKeys[i] = batchTrialKey(gk, trials[i].Seed)
		if share {
			if j, ok := firstByTrialKey[trialKeys[i]]; ok {
				// Byte-identical (config, seed) pair — the mega tiling case.
				dupOf[i] = j
				continue
			}
			firstByTrialKey[trialKeys[i]] = i
		}
		g := groupsByKey[gk]
		if g == nil {
			g = &batchGroup{key: gk}
			groupsByKey[gk] = g
			order = append(order, g)
		}
		g.members = append(g.members, i)
		groupOf[i] = g
	}
	phaseGroup.StopN(gt, int64(n))
	spGroup.EndArgs(map[string]any{"groups": len(order), "machines": n})

	finish := func(i int, r MachineResult) {
		results[i] = r
		done[i] = true
		if opts.OnMachine != nil {
			opts.OnMachine(r)
		}
	}

	// Phase 1: representatives. One trial per group runs (or resolves from
	// the cross-run cache) before the rest of its group, so its published
	// ladders and draw count are available to them.
	ladders := thermal.NewLadderCache()
	var reps []int
	for _, g := range order {
		i := g.members[0]
		if share {
			if c, ok := batchCacheGet(trialKeys[i]); ok {
				g.draws = c.draws
				finish(i, stampResult(c.res, &trials[i]))
				continue
			}
		}
		reps = append(reps, i)
	}
	spRep := opts.Trace.Start("represent", "scenario", 0)
	rt := phaseRepresent.Start()
	if _, err := runner.MapErrCtx(opts.Context, reps, func(_ int, i int) (struct{}, error) {
		r, draws, nn, err := runBatchedTrial(trials[i], opts, ladders, nil)
		if err != nil {
			return struct{}{}, err
		}
		g := groupOf[i]
		g.draws, g.nn = draws, nn
		if share {
			batchCachePut(trialKeys[i], cachedTrial{res: r, draws: draws})
		}
		finish(i, r)
		return struct{}{}, nil
	}); err != nil {
		return nil, fmt.Errorf("scenario %q: %w", spec.Name, err)
	}
	phaseRepresent.StopN(rt, int64(len(reps)))
	spRep.EndArgs(map[string]any{"representatives": len(reps)})

	// Phase 2: the rest of each group. A representative that consumed zero
	// RNG draws proves the configuration's dynamics are seed-insensitive —
	// the first draw would occur at the same simulated moment for every
	// seed, so if one seed never reaches it, none does — and its result
	// replicates across the group. Otherwise every member simulates, with
	// the group's published ladders adopted and its mutable hot state
	// carved from one contiguous structure-of-arrays slab per group.
	type pendingTrial struct {
		i       int
		scratch []float64
	}
	var pending []pendingTrial
	for _, g := range order {
		rep := g.members[0]
		if share && g.draws == 0 {
			for _, i := range g.members[1:] {
				finish(i, stampResult(results[rep], &trials[i]))
			}
			continue
		}
		var mem []int
		for _, i := range g.members[1:] {
			if done[i] {
				continue
			}
			if share {
				if c, ok := batchCacheGet(trialKeys[i]); ok {
					finish(i, stampResult(c.res, &trials[i]))
					continue
				}
			}
			mem = append(mem, i)
		}
		if len(mem) == 0 {
			continue
		}
		var slab []float64
		stride := 0
		if g.nn > 0 {
			stride = thermal.ScratchLen(g.nn)
			slab = make([]float64, stride*len(mem))
		}
		for k, i := range mem {
			var sc []float64
			if slab != nil {
				sc = slab[k*stride : (k+1)*stride]
			}
			pending = append(pending, pendingTrial{i: i, scratch: sc})
		}
	}
	spStep := opts.Trace.Start("step", "scenario", 0)
	if _, err := runner.MapErrCtx(opts.Context, pending, func(_ int, p pendingTrial) (struct{}, error) {
		r, draws, _, err := runBatchedTrial(trials[p.i], opts, ladders, p.scratch)
		if err != nil {
			return struct{}{}, err
		}
		if share {
			batchCachePut(trialKeys[p.i], cachedTrial{res: r, draws: draws})
		}
		finish(p.i, r)
		return struct{}{}, nil
	}); err != nil {
		return nil, fmt.Errorf("scenario %q: %w", spec.Name, err)
	}
	spStep.EndArgs(map[string]any{"members": len(pending)})

	// Phase 3: byte-identical duplicates copy their source's result with
	// their own identity stamped on.
	spStamp := opts.Trace.Start("stamp", "scenario", 0)
	stamped := 0
	for i := range trials {
		if dupOf[i] >= 0 {
			finish(i, stampResult(results[dupOf[i]], &trials[i]))
			stamped++
		}
	}
	spStamp.EndArgs(map[string]any{"duplicates": stamped})
	return results, nil
}

// RunBatchedByName looks the scenario up in the registry and runs it through
// the batched engine.
func RunBatchedByName(name string, scale float64) (*Result, error) {
	spec, ok := Get(name)
	if !ok {
		return nil, fmt.Errorf("scenario: unknown scenario %q", name)
	}
	return RunBatched(spec, scale)
}

// ExportBatched runs the named registered scenario through the batched
// engine and writes the same CSVs as Export — byte-identical files, faster
// fleet.
func ExportBatched(name string, scale float64, dir string) ([]string, error) {
	res, err := RunBatchedByName(name, scale)
	if err != nil {
		return nil, err
	}
	return ExportResult(res, dir)
}

// RunMegaByName looks the scenario up in the registry and runs it tiled out
// to total machines.
func RunMegaByName(name string, total int, scale float64) (*MegaResult, error) {
	spec, ok := Get(name)
	if !ok {
		return nil, fmt.Errorf("scenario: unknown scenario %q", name)
	}
	return RunMega(spec, total, scale)
}

// MegaResult is a tiled mega-fleet run: the spec's compiled fleet simulated
// once through the batched engine, replicated across Total indices, and
// aggregated through the same strict-index-order arithmetic as every other
// path — without ever materialising Total MachineResults.
type MegaResult struct {
	Spec     *Spec
	Scale    float64
	Total    int // fleet size after tiling
	Base     int // distinct machines actually simulated (the compiled fleet)
	Duration units.Time
	Warmup   units.Time
	Fleet    FleetAgg
}

// RunMega executes the scenario tiled out to total machines: machine i is an
// exact replica of compiled trial i mod B (same config, same seed), so only
// the B distinct trials simulate and the batched engine's dedup carries the
// rest. This is how a million-machine fleet summary comes off a laptop: B
// simulations, two O(total) float arrays for the temperature quantiles, and
// a compensated index-ordered fold for the totals.
func RunMega(spec *Spec, total int, scale float64) (*MegaResult, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if spec.Scheduler != nil {
		return nil, fmt.Errorf("scenario %q: has a scheduler block; run it through the fleetsched engine (dimctl sched run %s)", spec.Name, spec.Name)
	}
	base := spec.Fleet.Machines
	if total < base {
		return nil, fmt.Errorf("scenario %q: mega fleet of %d machines is smaller than the spec's fleet of %d", spec.Name, total, base)
	}
	br, err := RunBatched(spec, scale)
	if err != nil {
		return nil, err
	}
	agg := aggregateFrom(spec, total, func(i int) *MachineResult { return &br.Machines[i%base] })
	return &MegaResult{
		Spec:     spec,
		Scale:    scale,
		Total:    total,
		Base:     base,
		Duration: br.Duration,
		Warmup:   br.Warmup,
		Fleet:    agg,
	}, nil
}

// String renders the mega-fleet summary: the Result header and fleet block,
// with the per-machine table elided (a million-row table helps no one).
func (r *MegaResult) String() string {
	s := r.Spec
	a := r.Fleet
	out := fmt.Sprintf("Scenario %s: %s\n", s.Name, s.Title)
	out += fmt.Sprintf("mega fleet of %d machines (%d distinct simulated), %v per machine (%v warmup), policy %s, violation >= %.1fC\n",
		r.Total, r.Base, r.Duration, r.Warmup, policyLabel(s.Policy), s.violationC())
	out += fmt.Sprintf("mean junction across fleet:  p50 %7.3fC  p90 %7.3fC  max %7.3fC\n",
		a.MeanJunctionP50, a.MeanJunctionP90, a.MeanJunctionMax)
	out += fmt.Sprintf("peak junction across fleet:  p50 %7.3fC  p99 %7.3fC  max %7.3fC\n",
		a.PeakJunctionP50, a.PeakJunctionP99, a.PeakJunctionMax)
	out += fmt.Sprintf("fleet work rate %.3f ref-s/s   total power %.1fW   injection overhead %.2f%% (%d quanta)\n",
		a.TotalWorkRate, a.TotalPower, a.OverheadPct, a.TotalInjection)
	out += fmt.Sprintf("thermal violations: %d excursions on %d/%d machines, %.1fs above threshold\n",
		a.TotalViolations, a.MachinesViol, r.Total, a.ViolationS)
	if a.TM1Trips > 0 || a.TM1ThrottledS > 0 || s.Policy.TM1 {
		out += fmt.Sprintf("TM1 backstop: %d trips, %.1fs throttled fleet-wide\n", a.TM1Trips, a.TM1ThrottledS)
	}
	if a.WebMachines > 0 {
		out += fmt.Sprintf("web QoS: good %.1f%% mean / %.1f%% worst machine, %.1f req/s fleet throughput\n",
			100*a.WebGoodMean, 100*a.WebGoodMin, a.WebThroughput)
	}
	return out
}
