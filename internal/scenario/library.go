package scenario

// The starter library: five scenarios beyond the paper's fixed evaluation,
// registered at init. Each is a plain value — `dimctl scenario list` shows
// them, `dimctl scenario run <name>` executes them, and embedders can use
// them as templates for their own Register calls.
func init() {
	// A compressed datacenter day: the fleet's load follows a sinusoidal
	// envelope from a 15 % trough to full load and back, under the
	// efficient short-quantum Dimetrodon regime (Figure 3's finding).
	// Fan spread models rack-position airflow variance, so the fleet's
	// temperature percentiles separate the way a real hall's do.
	MustRegister(&Spec{
		Name:    "fleet-diurnal",
		Title:   "diurnal datacenter load across a 24-machine fleet",
		Summary: "gcc-proxy load under a day/night envelope with Dimetrodon p=0.5 L=25ms; rack airflow variance via fan spread.",
		Fleet:   FleetSpec{Machines: 24, BaseSeed: 7100, FanSpread: 0.15},
		Workload: []ComponentSpec{
			{Kind: KindSpec, Benchmark: "gcc",
				Arrival: ArrivalSpec{Pattern: ArrivalDiurnal, MinLoad: 0.15}},
		},
		Policy:     PolicySpec{Kind: PolicyDimetrodon, P: 0.5, LMS: 25},
		DurationS:  600,
		WarmupFrac: 0.1,
		ViolationC: 45,
	})

	// A webserver flash crowd: the §3.7 closed-loop web workload runs
	// steadily while a surge of CPU-bound work lands mid-run (a crowd
	// spike monopolising the cores), exercising how injection-throttled
	// machines absorb a transient without QoS collapse.
	MustRegister(&Spec{
		Name:    "flash-crowd",
		Title:   "webserver flash crowd under injection",
		Summary: "440-connection web workload plus a mid-run CPU surge window, Dimetrodon p=0.65 L=50ms.",
		Fleet:   FleetSpec{Machines: 12, BaseSeed: 7200},
		Workload: []ComponentSpec{
			{Kind: KindWebserver},
			{Kind: KindBurn, Threads: 2, PowerFactor: 0.95,
				Arrival: ArrivalSpec{Pattern: ArrivalWindow, StartFrac: 0.45, EndFrac: 0.7}},
		},
		Policy:     PolicySpec{Kind: PolicyDimetrodon, P: 0.65, LMS: 50},
		DurationS:  240,
		WarmupFrac: 0.1,
		ViolationC: 44,
	})

	// A MATTER-style thermal trojan: full-power bursts with a period near
	// the junction's ≈30 ms thermal time constant, maximising peak
	// temperature per unit of average utilisation — the adversarial shape
	// a preventive DTM system must hold. The adaptive controller defends
	// a 40 °C setpoint with the TM1 backstop armed behind it.
	MustRegister(&Spec{
		Name:    "thermal-trojan",
		Title:   "adversarial thermal-trojan bursts vs adaptive control",
		Summary: "60ms-period 70%-duty full-power bursts (MATTER-style) against the adaptive setpoint controller, TM1 armed.",
		Fleet:   FleetSpec{Machines: 16, BaseSeed: 7300, FanSpread: 0.1},
		Workload: []ComponentSpec{
			{Kind: KindTrojan, PeriodMS: 60, Duty: 0.7},
		},
		Policy:     PolicySpec{Kind: PolicyAdaptive, TargetC: 40, TM1: true},
		DurationS:  300,
		WarmupFrac: 0.1,
		ViolationC: 42,
	})

	// Multi-tenant colocation: four SPEC-proxy tenants of very different
	// thermal intensity share the four cores with a latency-ish periodic
	// task, under global injection — the mixed-rise regime Table 1's
	// calibration spans, now on one package at once.
	MustRegister(&Spec{
		Name:    "multi-tenant",
		Title:   "mixed SPEC-proxy colocation under global injection",
		Summary: "calculix+bzip2+gcc+astar colocated with a periodic cool task, Dimetrodon p=0.4 L=10ms.",
		Fleet:   FleetSpec{Machines: 16, BaseSeed: 7400},
		Workload: []ComponentSpec{
			{Kind: KindSpec, Benchmark: "calculix", Threads: 1},
			{Kind: KindSpec, Benchmark: "bzip2", Threads: 1},
			{Kind: KindSpec, Benchmark: "gcc", Threads: 1},
			{Kind: KindSpec, Benchmark: "astar", Threads: 1},
			{Kind: KindPeriodic, Threads: 1, BurstS: 0.5, PauseS: 2, PowerFactor: 0.6},
		},
		Policy:     PolicySpec{Kind: PolicyDimetrodon, P: 0.4, LMS: 10},
		DurationS:  300,
		WarmupFrac: 0.1,
		ViolationC: 46,
	})

	// An emergency-throttle storm: a fleet-wide cooling degradation (a
	// failed CRAC unit — every fan path at 2.4× resistance, unevenly)
	// under full load with no preventive policy, only the reactive TM1
	// backstop. The fleet rides the trip point in duty-cycle oscillation:
	// the storm of trips and throttled seconds is the §1 motivation for
	// preventive management, measured at fleet scale.
	MustRegister(&Spec{
		Name:    "throttle-storm",
		Title:   "fleet-wide cooling failure riding the TM1 backstop",
		Summary: "cpuburn fleet with degraded cooling (2.4x, uneven) and no preventive policy; TM1 trips absorb the heat.",
		Fleet:   FleetSpec{Machines: 20, BaseSeed: 7500, FanSpread: 0.5},
		Machine: MachineSpec{FanFactor: 2.4},
		Workload: []ComponentSpec{
			{Kind: KindBurn},
		},
		Policy:     PolicySpec{Kind: PolicyNone, TM1: true},
		DurationS:  300,
		WarmupFrac: 0.1,
		ViolationC: 80,
	})
}
