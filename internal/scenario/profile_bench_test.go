package scenario

import (
	"strings"
	"testing"

	"repro/internal/obs"
)

// BenchmarkFleetScenarioProfiled runs a library fleet with the phase profiler
// enabled and reports where the wall time went: per-phase milliseconds per
// fleet run, via the same accumulators `dimd -profile-phases` exports. The
// bench suite records these alongside ns/op, so a regression in one engine
// phase (compile, step, aggregate, ladder builds) is attributable instead of
// vanishing into the whole-run number.
func BenchmarkFleetScenarioProfiled(b *testing.B) {
	obs.ResetProfile()
	obs.EnableProfiling(true)
	defer obs.EnableProfiling(false)
	for i := 0; i < b.N; i++ {
		if _, err := Run(mustGet(b, "fleet-diurnal"), 0.05); err != nil {
			b.Fatal(err)
		}
	}
	for _, s := range obs.ProfileSnapshot() {
		if s.Count == 0 && s.NS == 0 {
			continue
		}
		// Metric names keep the phase's own dots; bench.sh records any
		// "<phase>-ms/run" column it finds.
		b.ReportMetric(float64(s.NS)/1e6/float64(b.N), s.Name+"-ms/run")
	}
}

// BenchmarkFleetScenarioObsOff is the paired control: the identical fleet run
// with profiling disabled (every Phase.Start a single failed atomic load) and
// no tracer. Comparing ns/op against the Profiled benchmark measures the
// observability layer's whole-run overhead — the <2% budget the design holds.
func BenchmarkFleetScenarioObsOff(b *testing.B) {
	obs.EnableProfiling(false)
	for i := 0; i < b.N; i++ {
		if _, err := Run(mustGet(b, "fleet-diurnal"), 0.05); err != nil {
			b.Fatal(err)
		}
	}
}

func mustGet(b *testing.B, name string) *Spec {
	spec, ok := Get(name)
	if !ok {
		b.Fatalf("scenario %q missing from the library", name)
	}
	return spec
}

// TestProfileReportShape smoke-checks the human rendering used after
// profiled CLI runs: phases that accumulated show up with their counts.
func TestProfileReportShape(t *testing.T) {
	obs.ResetProfile()
	obs.EnableProfiling(true)
	defer func() {
		obs.EnableProfiling(false)
		obs.ResetProfile()
	}()
	if _, err := Run(mustGetT(t, "fleet-diurnal"), 0.02); err != nil {
		t.Fatal(err)
	}
	rep := obs.ProfileReport()
	for _, phase := range []string{"scenario.compile", "scenario.step", "scenario.aggregate", "scenario.warmup"} {
		if !strings.Contains(rep, phase) {
			t.Errorf("profile report missing %s:\n%s", phase, rep)
		}
	}
}

func mustGetT(t *testing.T, name string) *Spec {
	spec, ok := Get(name)
	if !ok {
		t.Fatalf("scenario %q missing from the library", name)
	}
	return spec
}
