package scenario

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// Golden-trace regression fixtures for every starter scenario. The fixtures
// are committed from the exact integrator, which is byte-stable: exact runs
// diff byte-for-byte. Leap runs — the engine default — are tolerance-mode by
// design, so they compare against the same fixtures numerically, every
// numeric token within the golden tolerance bands (see tolerant.go).
// Regenerate after intentional model
// changes with:
//
//	UPDATE_GOLDEN=1 go test ./internal/scenario -run TestGoldenScenarios

const goldenScale = 0.05

func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name+".golden")
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("regenerated %s (%d bytes)", path, len(got))
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden fixture %s — regenerate with UPDATE_GOLDEN=1 go test ./... -run Golden", path)
	}
	if got != string(want) {
		t.Errorf("output drifted from %s:\n%s\n(if intentional: UPDATE_GOLDEN=1 go test ./... -run Golden)", path, firstDiff(string(want), got))
	}
}

// checkGoldenTolerant diffs got against the committed fixture with numeric
// tolerance: the line structure and every non-numeric token must match
// exactly, numeric tokens within GoldenAbsTol absolute or GoldenRelTol
// relative. This is how leap-mode output is validated against exact-mode
// fixtures.
func checkGoldenTolerant(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name+".golden")
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden fixture %s — regenerate with UPDATE_GOLDEN=1 go test ./... -run Golden", path)
	}
	if msg := TolerantDiff(string(want), got); msg != "" {
		t.Errorf("leap output outside tolerance of %s:\n%s", path, msg)
	}
}

func firstDiff(want, got string) string {
	wl, gl := strings.Split(want, "\n"), strings.Split(got, "\n")
	for i := 0; i < len(wl) || i < len(gl); i++ {
		var w, g string
		if i < len(wl) {
			w = wl[i]
		}
		if i < len(gl) {
			g = gl[i]
		}
		if w != g {
			return fmt.Sprintf("line %d:\n-%s\n+%s", i+1, w, g)
		}
	}
	return "(lengths differ)"
}

// runPinned runs a library scenario with the integrator pinned.
func runPinned(t *testing.T, name, integrator string) *Result {
	t.Helper()
	spec, ok := Get(name)
	if !ok {
		t.Fatalf("scenario %q missing from the library", name)
	}
	pinned := *spec
	pinned.Machine.Integrator = integrator
	res, err := Run(&pinned, goldenScale)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestGoldenScenarios pins every starter scenario's rendered output: the
// exact integrator byte-for-byte against the committed fixture, the leap
// integrator (the engine default) within the numeric tolerance band.
func TestGoldenScenarios(t *testing.T) {
	for _, name := range Names() {
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			checkGolden(t, name, runPinned(t, name, "exact").String())
		})
		t.Run(name+"/leap", func(t *testing.T) {
			t.Parallel()
			if os.Getenv("UPDATE_GOLDEN") != "" {
				t.Skip("fixtures regenerate from the exact integrator")
			}
			checkGoldenTolerant(t, name, runPinned(t, name, "leap").String())
		})
	}
}

// TestGoldenScenarioExports pins the CSV export shape alongside the rendered
// output: every starter scenario must export a machines and a fleet file
// whose bytes are golden too (the fleet file; the machines file is covered
// by the per-machine rows already embedded in the rendered golden).
func TestGoldenScenarioExports(t *testing.T) {
	for _, name := range Names() {
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			res := runPinned(t, name, "exact")
			dir := t.TempDir()
			paths, err := ExportResult(res, dir)
			if err != nil {
				t.Fatal(err)
			}
			if len(paths) != 2 {
				t.Fatalf("exported %d files, want 2: %v", len(paths), paths)
			}
			fleet, err := os.ReadFile(paths[1])
			if err != nil {
				t.Fatal(err)
			}
			checkGolden(t, name+"_fleet_csv", string(fleet))
		})
	}
}
