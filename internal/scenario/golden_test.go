package scenario

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// Golden-trace regression fixtures for every starter scenario: the rendered
// fleet output at a small fixed scale is committed under testdata/ and
// diffed byte-for-byte. Regenerate after intentional model changes with:
//
//	UPDATE_GOLDEN=1 go test ./internal/scenario -run TestGoldenScenarios

const goldenScale = 0.05

func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name+".golden")
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("regenerated %s (%d bytes)", path, len(got))
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden fixture %s — regenerate with UPDATE_GOLDEN=1 go test ./... -run Golden", path)
	}
	if got != string(want) {
		t.Errorf("output drifted from %s:\n%s\n(if intentional: UPDATE_GOLDEN=1 go test ./... -run Golden)", path, firstDiff(string(want), got))
	}
}

func firstDiff(want, got string) string {
	wl, gl := strings.Split(want, "\n"), strings.Split(got, "\n")
	for i := 0; i < len(wl) || i < len(gl); i++ {
		var w, g string
		if i < len(wl) {
			w = wl[i]
		}
		if i < len(gl) {
			g = gl[i]
		}
		if w != g {
			return fmt.Sprintf("line %d:\n-%s\n+%s", i+1, w, g)
		}
	}
	return "(lengths differ)"
}

func TestGoldenScenarios(t *testing.T) {
	for _, name := range Names() {
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			res, err := RunByName(name, goldenScale)
			if err != nil {
				t.Fatal(err)
			}
			checkGolden(t, name, res.String())
		})
	}
}

// TestGoldenScenarioExports pins the CSV export shape alongside the rendered
// output: every starter scenario must export a machines and a fleet file
// whose bytes are golden too (the fleet file; the machines file is covered
// by the per-machine rows already embedded in the rendered golden).
func TestGoldenScenarioExports(t *testing.T) {
	for _, name := range Names() {
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			res, err := RunByName(name, goldenScale)
			if err != nil {
				t.Fatal(err)
			}
			dir := t.TempDir()
			paths, err := ExportResult(res, dir)
			if err != nil {
				t.Fatal(err)
			}
			if len(paths) != 2 {
				t.Fatalf("exported %d files, want 2: %v", len(paths), paths)
			}
			fleet, err := os.ReadFile(paths[1])
			if err != nil {
				t.Fatal(err)
			}
			checkGolden(t, name+"_fleet_csv", string(fleet))
		})
	}
}
