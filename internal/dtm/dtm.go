// Package dtm implements the comparable preventive thermal management
// techniques the paper evaluates against Dimetrodon in Figure 4:
//
//   - race-to-idle (no actuation — the unconstrained baseline),
//   - static voltage and frequency scaling (VFS), run in the paper under
//     Linux because FreeBSD lacked driver support for the board, and
//   - p4tcc, FreeBSD's driver for the thermal control circuit's fine-grained
//     clock duty-cycle modulation.
//
// Each technique configures a simulated machine before a run; they share the
// Technique interface so the Figure 4 sweep can treat them uniformly.
package dtm

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/units"
)

// Technique statically configures a machine for one evaluation run.
type Technique interface {
	// Name identifies the technique family ("dimetrodon", "vfs", ...).
	Name() string
	// Label describes the specific setpoint for plot legends.
	Label() string
	// Apply configures the machine. It must be called before workload
	// threads are spawned.
	Apply(m *machine.Machine) error
}

// RaceToIdle is the unconstrained baseline: jobs run to completion at full
// speed and the processor idles afterwards.
type RaceToIdle struct{}

// Name implements Technique.
func (RaceToIdle) Name() string { return "race-to-idle" }

// Label implements Technique.
func (RaceToIdle) Label() string { return "race-to-idle" }

// Apply implements Technique.
func (RaceToIdle) Apply(m *machine.Machine) error { return nil }

// VFS pins the chip to one DVFS operating point for the whole run — the
// static voltage/frequency policy of §3.4. Power falls roughly cubically
// (frequency times squared voltage) while throughput falls linearly, which is
// why VFS wins at large temperature reductions; but the ladder is coarse
// (133 MHz steps, 1.60 GHz floor) and chip-wide.
type VFS struct {
	// PState indexes the ladder; 0 is nominal (no actuation).
	PState int
}

// Name implements Technique.
func (VFS) Name() string { return "vfs" }

// Label implements Technique.
func (v VFS) Label() string { return fmt.Sprintf("vfs[%d]", v.PState) }

// Apply implements Technique.
func (v VFS) Apply(m *machine.Machine) error {
	if v.PState < 0 || v.PState >= m.Chip.PStateCount() {
		return fmt.Errorf("dtm: P-state %d outside ladder of %d", v.PState, m.Chip.PStateCount())
	}
	m.Chip.SetPState(v.PState)
	return nil
}

// P4TCC engages the thermal control circuit's clock modulation at a fixed
// duty cycle (multiples of 1/8 on this hardware). Gating at clock granularity
// stops switching power for the gated fraction but leaves the core at full
// voltage — leakage continues and the package never reaches a low-power
// state, which is why the paper found it "significantly worse", failing even
// 1:1 trade-offs at high reductions.
type P4TCC struct {
	// Duty is the fraction of clocks delivered, in (0, 1].
	Duty float64
}

// Name implements Technique.
func (P4TCC) Name() string { return "p4tcc" }

// Label implements Technique.
func (p P4TCC) Label() string { return fmt.Sprintf("p4tcc[%.3f]", p.Duty) }

// Apply implements Technique.
func (p P4TCC) Apply(m *machine.Machine) error {
	if p.Duty <= 0 || p.Duty > 1 {
		return fmt.Errorf("dtm: duty %v outside (0,1]", p.Duty)
	}
	m.Chip.SetDuty(p.Duty)
	return nil
}

// Dimetrodon applies a global idle-cycle-injection policy via a fresh
// Controller attached to the machine's scheduler. For per-process policies
// use core.Controller directly; this wrapper exists so sweeps can treat
// Dimetrodon like the other techniques.
type Dimetrodon struct {
	P float64
	L units.Time
	// Deterministic selects the error-accumulator injection variant.
	Deterministic bool
}

// Name implements Technique.
func (Dimetrodon) Name() string { return "dimetrodon" }

// Label implements Technique.
func (d Dimetrodon) Label() string {
	return fmt.Sprintf("dimetrodon[p=%g L=%v]", d.P, d.L)
}

// Apply implements Technique.
func (d Dimetrodon) Apply(m *machine.Machine) error {
	ctl := core.NewController(m.RNG.Split())
	ctl.Deterministic = d.Deterministic
	if err := ctl.SetGlobal(core.Params{P: d.P, L: d.L}); err != nil {
		return err
	}
	m.Sched.SetInjector(ctl)
	return nil
}
