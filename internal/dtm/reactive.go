package dtm

import (
	"fmt"

	"repro/internal/machine"
	"repro/internal/sensor"
	"repro/internal/units"
)

// TM1Config parameterises the reactive thermal monitor: the worst-case DTM
// mechanism the paper contrasts Dimetrodon against (§1: traditional DTM "is
// not activated except under extreme thermal conditions that are likely
// caused by some other catastrophic failure (e.g., cooling system
// problems)").
type TM1Config struct {
	// Trip engages throttling when any DTS reading reaches it.
	Trip units.Celsius
	// Relief disengages once the hottest reading falls below it
	// (hysteresis; must be below Trip).
	Relief units.Celsius
	// Duty is the TCC duty cycle applied while engaged (TM1 on real
	// hardware modulates at 37.5–50 %).
	Duty float64
	// PollEvery is the monitor's sampling period.
	PollEvery units.Time
}

// DefaultTM1Config mirrors the hardware's thermal monitor: trip just below
// TjMax, 5 °C hysteresis, 37.5 % duty.
func DefaultTM1Config() TM1Config {
	return TM1Config{
		Trip:      85,
		Relief:    80,
		Duty:      0.375,
		PollEvery: units.Millisecond,
	}
}

// Validate reports configuration errors.
func (c TM1Config) Validate() error {
	if c.Relief >= c.Trip {
		return fmt.Errorf("dtm: TM1 relief %v must be below trip %v", c.Relief, c.Trip)
	}
	if c.Duty <= 0 || c.Duty > 1 {
		return fmt.Errorf("dtm: TM1 duty %v outside (0,1]", c.Duty)
	}
	if c.PollEvery <= 0 {
		return fmt.Errorf("dtm: TM1 poll period must be positive")
	}
	return nil
}

// TM1 is a running reactive thermal monitor bound to a machine: it polls the
// DTS sensors and engages TCC duty-cycle throttling above the trip point,
// releasing with hysteresis. It is the emergency backstop preventive
// management aims to keep dormant.
type TM1 struct {
	cfg     TM1Config
	m       *machine.Machine
	sensors []*sensor.DTS
	engaged bool

	// Engagements counts trip events; ThrottledTime accumulates time
	// spent throttled.
	Engagements   int
	ThrottledTime units.Time
	engagedAt     units.Time
}

// AttachTM1 starts a reactive monitor on m.
func AttachTM1(m *machine.Machine, cfg TM1Config) (*TM1, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	t := &TM1{cfg: cfg, m: m}
	for i := 0; i < m.Chip.NumCores(); i++ {
		t.sensors = append(t.sensors, sensor.NewCoretemp())
	}
	m.Clock.ScheduleAfter(cfg.PollEvery, "tm1-poll", t.poll)
	return t, nil
}

// Engaged reports whether throttling is currently active.
func (t *TM1) Engaged() bool { return t.engaged }

func (t *TM1) poll(now units.Time) {
	temps := t.m.JunctionTemps()
	hottest := units.Celsius(-1000)
	for i, s := range t.sensors {
		if v := s.Read(now, temps[i]); v > hottest {
			hottest = v
		}
	}
	switch {
	case !t.engaged && hottest >= t.cfg.Trip:
		t.engaged = true
		t.engagedAt = now
		t.Engagements++
		t.m.Chip.SetDuty(t.cfg.Duty)
	case t.engaged && hottest < t.cfg.Relief:
		t.engaged = false
		t.ThrottledTime += now - t.engagedAt
		t.m.Chip.SetDuty(1)
	}
	t.m.Clock.ScheduleAfter(t.cfg.PollEvery, "tm1-poll", t.poll)
}

// Throttled returns the total time spent engaged, including an in-progress
// engagement up to now.
func (t *TM1) Throttled(now units.Time) units.Time {
	d := t.ThrottledTime
	if t.engaged {
		d += now - t.engagedAt
	}
	return d
}
