package dtm

import (
	"strings"
	"testing"

	"repro/internal/machine"
	"repro/internal/sched"
	"repro/internal/units"
	"repro/internal/workload"
)

func TestRaceToIdleIsNoop(t *testing.T) {
	m := machine.New(machine.DefaultConfig())
	if err := (RaceToIdle{}).Apply(m); err != nil {
		t.Fatal(err)
	}
	if m.Chip.PState() != 0 || m.Chip.Duty() != 1 {
		t.Error("race-to-idle changed chip state")
	}
}

func TestVFSApply(t *testing.T) {
	m := machine.New(machine.DefaultConfig())
	if err := (VFS{PState: 3}).Apply(m); err != nil {
		t.Fatal(err)
	}
	if m.Chip.PState() != 3 {
		t.Errorf("P-state = %d", m.Chip.PState())
	}
	if err := (VFS{PState: 99}).Apply(m); err == nil {
		t.Error("out-of-range P-state accepted")
	}
	if err := (VFS{PState: -1}).Apply(m); err == nil {
		t.Error("negative P-state accepted")
	}
}

func TestP4TCCApply(t *testing.T) {
	m := machine.New(machine.DefaultConfig())
	if err := (P4TCC{Duty: 0.5}).Apply(m); err != nil {
		t.Fatal(err)
	}
	if m.Chip.Duty() != 0.5 {
		t.Errorf("duty = %v", m.Chip.Duty())
	}
	for _, bad := range []float64{0, -0.5, 1.5} {
		if err := (P4TCC{Duty: bad}).Apply(m); err == nil {
			t.Errorf("duty %v accepted", bad)
		}
	}
}

func TestDimetrodonApplyInstallsInjector(t *testing.T) {
	m := machine.New(machine.DefaultConfig())
	if err := (Dimetrodon{P: 0.5, L: 10 * units.Millisecond}).Apply(m); err != nil {
		t.Fatal(err)
	}
	th := m.Sched.Spawn(workload.Burn(), sched.SpawnConfig{Name: "b", PowerFactor: 1})
	m.RunFor(10 * units.Second)
	if th.Injections == 0 {
		t.Error("no injections after Dimetrodon.Apply")
	}
	if err := (Dimetrodon{P: 1.5, L: units.Millisecond}).Apply(m); err == nil {
		t.Error("invalid policy accepted")
	}
}

func TestDimetrodonSlowdownMatchesModel(t *testing.T) {
	// End-to-end: p=0.5, L=q doubles runtime within a few percent.
	m := machine.New(machine.DefaultConfig())
	if err := (Dimetrodon{P: 0.5, L: 100 * units.Millisecond}).Apply(m); err != nil {
		t.Fatal(err)
	}
	th := m.Sched.Spawn(workload.FiniteBurn(2.0), sched.SpawnConfig{Name: "fin", PowerFactor: 1})
	for !th.Exited() && m.Now() < 60*units.Second {
		m.RunFor(100 * units.Millisecond)
	}
	if !th.Exited() {
		t.Fatal("did not finish")
	}
	runtime := th.ExitedAt.Seconds()
	if runtime < 3.2 || runtime > 4.8 { // E = 4 s, binomial spread
		t.Errorf("runtime %v s, want ≈4 s", runtime)
	}
}

func TestLabels(t *testing.T) {
	cases := []struct {
		tech Technique
		name string
		sub  string
	}{
		{RaceToIdle{}, "race-to-idle", "race-to-idle"},
		{VFS{PState: 2}, "vfs", "vfs[2]"},
		{P4TCC{Duty: 0.5}, "p4tcc", "0.5"},
		{Dimetrodon{P: 0.5, L: 10 * units.Millisecond}, "dimetrodon", "p=0.5"},
	}
	for _, c := range cases {
		if c.tech.Name() != c.name {
			t.Errorf("Name = %q, want %q", c.tech.Name(), c.name)
		}
		if !strings.Contains(c.tech.Label(), c.sub) {
			t.Errorf("Label %q missing %q", c.tech.Label(), c.sub)
		}
	}
}
