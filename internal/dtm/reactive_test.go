package dtm

import (
	"testing"

	"repro/internal/machine"
	"repro/internal/sched"
	"repro/internal/units"
	"repro/internal/workload"
)

func TestTM1ConfigValidate(t *testing.T) {
	if err := DefaultTM1Config().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []TM1Config{
		{Trip: 80, Relief: 80, Duty: 0.5, PollEvery: units.Millisecond},
		{Trip: 85, Relief: 80, Duty: 0, PollEvery: units.Millisecond},
		{Trip: 85, Relief: 80, Duty: 1.5, PollEvery: units.Millisecond},
		{Trip: 85, Relief: 80, Duty: 0.5, PollEvery: 0},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
	m := machine.New(machine.DefaultConfig())
	if _, err := AttachTM1(m, bad[0]); err == nil {
		t.Error("AttachTM1 accepted invalid config")
	}
}

func TestTM1StaysDormantAtNominalCooling(t *testing.T) {
	// With the paper's full-speed fans, cpuburn peaks near 52 °C: far
	// below the 85 °C trip; the monitor must never engage.
	m := machine.New(machine.DefaultConfig())
	tm1, err := AttachTM1(m, DefaultTM1Config())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		m.Sched.Spawn(workload.Burn(), sched.SpawnConfig{Name: "b", PowerFactor: 1})
	}
	m.RunFor(120 * units.Second)
	if tm1.Engagements != 0 || tm1.Engaged() {
		t.Errorf("TM1 engaged %d times under nominal cooling", tm1.Engagements)
	}
	if m.Chip.Duty() != 1 {
		t.Error("duty modified while dormant")
	}
}

func TestTM1EngagesAndBoundsTemperature(t *testing.T) {
	cfg := machine.DefaultConfig()
	cfg.FanFactor = 2.4 // cooling failure
	m := machine.New(cfg)
	tm1, err := AttachTM1(m, DefaultTM1Config())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		m.Sched.Spawn(workload.Burn(), sched.SpawnConfig{Name: "b", PowerFactor: 1})
	}
	peak := units.Celsius(0)
	for m.Now() < 180*units.Second {
		m.RunFor(100 * units.Millisecond)
		for _, tj := range m.JunctionTemps() {
			if tj > peak {
				peak = tj
			}
		}
	}
	if tm1.Engagements == 0 {
		t.Fatal("TM1 never engaged under cooling failure")
	}
	// The monitor must bound the junction near the trip point.
	if float64(peak) > 88 {
		t.Errorf("peak %v exceeded trip + margin", peak)
	}
	if tm1.Throttled(m.Now()) == 0 {
		t.Error("no throttled time accumulated")
	}
	// Hysteresis: the duty is restored between engagements (mean temp
	// oscillates across the relief band), so the engagement count should
	// exceed one over three minutes.
	if tm1.Engagements < 2 {
		t.Errorf("only %d engagement(s); hysteresis not cycling", tm1.Engagements)
	}
}
