package cluster

import (
	"context"
	"fmt"
	"log/slog"
	"sort"
	"sync"
	"time"

	"repro/internal/scenario"
)

// Config sizes the distributed tier. Zero fields select the documented
// defaults.
type Config struct {
	// Workers is the static worker URL list (opaque to this package; the
	// injected Transport interprets them).
	Workers []string
	// LeaseTTL bounds how long a granted shard may go without streaming a
	// result before its lease is revoked and the shard re-dispatched.
	// Default: 10s.
	LeaseTTL time.Duration
	// HeartbeatEvery is the worker health-probe cadence. Default: 2s.
	HeartbeatEvery time.Duration
	// ProbeTimeout bounds one health probe. Default: HeartbeatEvery.
	ProbeTimeout time.Duration
	// UnhealthyAfter is the consecutive heartbeat misses that mark a worker
	// unhealthy (the first success heals it). Default: 3.
	UnhealthyAfter int
	// BreakerThreshold is the consecutive dispatch failures that open a
	// worker's circuit breaker. Default: 3.
	BreakerThreshold int
	// BreakerCooldown is the open->half-open delay. Default: 2*LeaseTTL.
	BreakerCooldown time.Duration
	// ShardsPerWorker is the oversharding factor: the fleet splits into
	// len(Workers)*ShardsPerWorker shards so a lost worker forfeits a
	// fraction of the fleet, not 1/len(Workers) of it. Default: 4.
	ShardsPerWorker int
	// MaxPerWorker caps concurrently dispatched shards per worker.
	// Default: 2.
	MaxPerWorker int
	// MaxShardAttempts is the remote grant budget per shard; past it the
	// shard runs locally (degraded mode) instead of failing the job.
	// Default: 3.
	MaxShardAttempts int
	// Logger receives lease-lifecycle logs; nil discards them.
	Logger *slog.Logger
}

func (c Config) withDefaults() Config {
	if c.LeaseTTL <= 0 {
		c.LeaseTTL = 10 * time.Second
	}
	if c.HeartbeatEvery <= 0 {
		c.HeartbeatEvery = 2 * time.Second
	}
	if c.ProbeTimeout <= 0 {
		c.ProbeTimeout = c.HeartbeatEvery
	}
	if c.UnhealthyAfter <= 0 {
		c.UnhealthyAfter = 3
	}
	if c.BreakerThreshold <= 0 {
		c.BreakerThreshold = 3
	}
	if c.BreakerCooldown <= 0 {
		c.BreakerCooldown = 2 * c.LeaseTTL
	}
	if c.ShardsPerWorker <= 0 {
		c.ShardsPerWorker = 4
	}
	if c.MaxPerWorker <= 0 {
		c.MaxPerWorker = 2
	}
	if c.MaxShardAttempts <= 0 {
		c.MaxShardAttempts = 3
	}
	return c
}

// ProbeFunc probes one worker's health within ctx's deadline. The service
// layer supplies an HTTP GET; unit tests supply fakes.
type ProbeFunc func(ctx context.Context, url string) error

// Event is one lease-lifecycle notification, the hook the service layer maps
// to metrics and trace spans. Kind is "grant" (Attempt 1 = first dispatch,
// >1 = redispatch), "revoke" (Reason and lease Age set), "done" (the shard's
// results are complete; Age is the final attempt's duration), or "local"
// (the shard fell back to in-process execution).
type Event struct {
	Kind    string
	Shard   Shard
	Worker  string
	Attempt int
	Age     time.Duration
	Reason  string
}

// ReasonExpired is the revoke reason for a lease that outlived its TTL
// without streaming progress.
const ReasonExpired = "lease expired"

// RunReq is one distributed fleet execution request. Dispatch and Local are
// per-request because they close over the job's spec; the coordinator itself
// is job-agnostic.
type RunReq struct {
	// Machines is the compiled fleet size at the job's scale.
	Machines int
	// Done lists machine indices whose results a recovered checkpoint
	// already holds; shards skip them.
	Done []int
	// Dispatch executes sh (minus skip indices) on the worker at url,
	// invoking onResult per completed machine as results stream back. It
	// returns nil only after the worker's terminal confirmation; a stream
	// that ends early must return an error. ctx cancellation (lease revoke,
	// job cancel) must abort promptly.
	Dispatch func(ctx context.Context, url string, sh Shard, skip []int, onResult func(scenario.MachineResult)) error
	// Local executes sh in-process — the degraded path.
	Local func(ctx context.Context, sh Shard, skip []int, onResult func(scenario.MachineResult)) error
	// OnResult receives each newly computed machine result exactly once
	// (first-wins across duplicate deliveries), from multiple goroutines.
	OnResult func(scenario.MachineResult)
	// OnEvent receives lease-lifecycle events; may be nil.
	OnEvent func(Event)
}

// Outcome summarises a completed Run.
type Outcome struct {
	// Results holds the newly computed machine results, index-sorted
	// (checkpoint-recovered indices are not repeated).
	Results []scenario.MachineResult
	// Degraded reports that at least one shard ran locally because no
	// healthy worker could take it.
	Degraded bool
	// Redispatches counts lease grants past each shard's first.
	Redispatches int
	// Expirations counts leases revoked by TTL expiry.
	Expirations int
	// LocalShards counts shards that ran in-process.
	LocalShards int
}

// Lease states.
const (
	leasePending = iota // waiting for a grant
	leaseGranted        // dispatched to a worker under a live TTL
	leaseLocal          // running in-process (degraded)
	leaseDone
)

// lease is one shard's grant record. epoch invalidates in-flight attempts:
// a revoked attempt's late completion (or its streamed stragglers' renewal)
// must not touch the successor grant's lease.
type lease struct {
	shard     Shard
	state     int
	worker    *workerState
	attempts  int // grants so far, remote and local
	remote    int // remote grants so far (the MaxShardAttempts budget)
	epoch     int
	grantedAt time.Time
	expiry    time.Time
	cancel    context.CancelFunc
}

// Coordinator runs fleets across the worker set. One Coordinator serves many
// sequential or concurrent Run calls; the heartbeat monitor is shared.
type Coordinator struct {
	cfg Config
	mon *Monitor
	log *slog.Logger
}

// New builds a coordinator and starts its heartbeat monitor (driven by
// probe). Call Stop when done. onHealth, when non-nil, observes worker
// health transitions (the service layer logs them and updates gauges).
func New(cfg Config, probe ProbeFunc, onHealth func(url string, healthy bool)) *Coordinator {
	cfg = cfg.withDefaults()
	c := &Coordinator{cfg: cfg, log: cfg.Logger}
	if c.log == nil {
		c.log = slog.New(discardHandler{})
	}
	c.mon = newMonitor(cfg.Workers, cfg, probe, onHealth)
	c.mon.Start()
	return c
}

// Stop halts the heartbeat monitor.
func (c *Coordinator) Stop() { c.mon.Stop() }

// Monitor exposes the worker health table for status documents and metrics.
func (c *Coordinator) Monitor() *Monitor { return c.mon }

// attemptDone is one dispatch goroutine's completion notice.
type attemptDone struct {
	l     *lease
	epoch int
	local bool
	err   error
}

// Run executes a Machines-wide fleet across the workers and returns once
// every machine index outside req.Done has a result. Failures re-dispatch;
// only context cancellation or a deterministic engine error (reproduced by
// the local fallback) fails the run.
func (c *Coordinator) Run(ctx context.Context, req RunReq) (Outcome, error) {
	var out Outcome
	if req.Machines <= 0 {
		return out, fmt.Errorf("cluster: fleet of %d machines", req.Machines)
	}
	if req.Dispatch == nil || req.Local == nil {
		return out, fmt.Errorf("cluster: RunReq needs both Dispatch and Local")
	}

	done := make(map[int]bool, len(req.Done))
	for _, i := range req.Done {
		done[i] = true
	}

	// results guards the first-wins dedupe: streamed results from a revoked
	// attempt still count (determinism makes any delivery of index i the
	// delivery), and the successor grant skips them.
	var mu sync.Mutex
	results := map[int]scenario.MachineResult{}
	covered := func(i int) bool { return done[i] || func() bool { _, ok := results[i]; return ok }() }

	target := len(c.cfg.Workers) * c.cfg.ShardsPerWorker
	if target < 1 {
		target = 1
	}
	leases := make([]*lease, 0, target)
	doneShards := 0
	for _, sh := range Plan(req.Machines, target) {
		l := &lease{shard: sh, state: leasePending}
		mu.Lock()
		if c.remaining(l, done, results) == nil {
			l.state = leaseDone
			doneShards++
		}
		mu.Unlock()
		leases = append(leases, l)
	}

	resCh := make(chan attemptDone, len(leases))
	inflight := 0
	watch := c.cfg.LeaseTTL / 4
	if watch < 5*time.Millisecond {
		watch = 5 * time.Millisecond
	}
	ticker := time.NewTicker(watch)
	defer ticker.Stop()

	emit := func(e Event) {
		if req.OnEvent != nil {
			req.OnEvent(e)
		}
	}

	grantLocal := func(l *lease) {
		actx, cancel := context.WithCancel(ctx)
		mu.Lock()
		l.state = leaseLocal
		l.attempts++
		l.epoch++
		l.grantedAt = time.Now()
		l.cancel = cancel
		epoch := l.epoch
		skip := c.skipList(l, done, results)
		mu.Unlock()
		out.Degraded = true
		out.LocalShards++
		if l.attempts > 1 {
			out.Redispatches++
		}
		emit(Event{Kind: "local", Shard: l.shard, Attempt: l.attempts})
		c.log.Warn("shard degraded to local run", "shard", l.shard.ID, "from", l.shard.From, "to", l.shard.To, "attempt", l.attempts)
		inflight++
		go func() {
			err := req.Local(actx, l.shard, skip, c.dedupe(&mu, l, epoch, done, results, req.OnResult))
			resCh <- attemptDone{l: l, epoch: epoch, local: true, err: err}
		}()
	}

	grantRemote := func(l *lease, w *workerState) {
		actx, cancel := context.WithCancel(ctx)
		mu.Lock()
		l.state = leaseGranted
		l.worker = w
		l.attempts++
		l.remote++
		l.epoch++
		l.grantedAt = time.Now()
		l.expiry = l.grantedAt.Add(c.cfg.LeaseTTL)
		l.cancel = cancel
		epoch := l.epoch
		skip := c.skipList(l, done, results)
		mu.Unlock()
		if l.attempts > 1 {
			out.Redispatches++
		}
		emit(Event{Kind: "grant", Shard: l.shard, Worker: w.url, Attempt: l.attempts})
		c.log.Info("lease granted", "shard", l.shard.ID, "worker", w.url, "attempt", l.attempts, "skip", len(skip))
		inflight++
		go func() {
			err := req.Dispatch(actx, w.url, l.shard, skip, c.dedupe(&mu, l, epoch, done, results, req.OnResult))
			resCh <- attemptDone{l: l, epoch: epoch, err: err}
		}()
	}

	for doneShards < len(leases) {
		if err := ctx.Err(); err != nil {
			c.drain(leases, resCh, inflight)
			return out, err
		}

		// Grant every pending shard a slot if one exists. Degrade-to-local
		// fires only when nothing is running and no worker can take work —
		// the "every worker is unhealthy" contract — or when a single shard
		// has burned its remote attempt budget.
		granted := true
		for granted {
			granted = false
			for _, l := range leases {
				if l.state != leasePending {
					continue
				}
				if l.remote >= c.cfg.MaxShardAttempts {
					grantLocal(l)
					granted = true
					continue
				}
				if w := c.mon.acquire(c.cfg.MaxPerWorker); w != nil {
					grantRemote(l, w)
					granted = true
				}
			}
			if !granted && inflight == 0 && !c.mon.anyAvailable(c.cfg.MaxPerWorker) {
				// Total worker outage: run the next pending shard locally so
				// the job completes (degraded) instead of stalling forever.
				for _, l := range leases {
					if l.state == leasePending {
						grantLocal(l)
						granted = true
						break
					}
				}
			}
		}

		select {
		case d := <-resCh:
			inflight--
			c.finishAttempt(d, &mu, done, results, leases, &doneShards, emit)
			if d.local && d.err != nil && ctx.Err() == nil {
				// The local engine is authoritative: its error is the spec's
				// error, not a network artifact. Fail the run.
				c.drain(leases, resCh, inflight)
				return out, d.err
			}
		case <-ticker.C:
			now := time.Now()
			var expired []*lease
			mu.Lock()
			for _, l := range leases {
				if l.state == leaseGranted && now.After(l.expiry) {
					expired = append(expired, l)
				}
			}
			mu.Unlock()
			for _, l := range expired {
				out.Expirations++
				c.revoke(l, &mu, ReasonExpired, emit)
			}
		case <-ctx.Done():
		}
	}

	mu.Lock()
	for i := 0; i < req.Machines; i++ {
		if !covered(i) {
			mu.Unlock()
			return out, fmt.Errorf("cluster: machine %d has no result after all shards completed", i)
		}
	}
	out.Results = make([]scenario.MachineResult, 0, len(results))
	for _, r := range results {
		out.Results = append(out.Results, r)
	}
	mu.Unlock()
	sort.Slice(out.Results, func(a, b int) bool { return out.Results[a].Index < out.Results[b].Index })
	return out, nil
}

// dedupe wraps the caller's OnResult with first-wins index dedupe and lease
// renewal: every accepted result extends the granting lease's TTL (streamed
// progress is the heartbeat that matters).
func (c *Coordinator) dedupe(mu *sync.Mutex, l *lease, epoch int, done map[int]bool, results map[int]scenario.MachineResult, onResult func(scenario.MachineResult)) func(scenario.MachineResult) {
	return func(m scenario.MachineResult) {
		mu.Lock()
		if done[m.Index] {
			mu.Unlock()
			return
		}
		if _, ok := results[m.Index]; ok {
			mu.Unlock()
			return
		}
		results[m.Index] = m
		if l.epoch == epoch && l.state == leaseGranted {
			l.expiry = time.Now().Add(c.cfg.LeaseTTL)
		}
		mu.Unlock()
		if onResult != nil {
			onResult(m)
		}
	}
}

// remaining returns the shard's machine indices still lacking a result.
// Caller holds the results mutex.
func (c *Coordinator) remaining(l *lease, done map[int]bool, results map[int]scenario.MachineResult) []int {
	var miss []int
	for i := l.shard.From; i < l.shard.To; i++ {
		if done[i] {
			continue
		}
		if _, ok := results[i]; ok {
			continue
		}
		miss = append(miss, i)
	}
	return miss
}

// skipList returns the shard indices an attempt should not recompute.
// Caller holds the results mutex.
func (c *Coordinator) skipList(l *lease, done map[int]bool, results map[int]scenario.MachineResult) []int {
	var skip []int
	for i := l.shard.From; i < l.shard.To; i++ {
		if done[i] {
			skip = append(skip, i)
			continue
		}
		if _, ok := results[i]; ok {
			skip = append(skip, i)
		}
	}
	return skip
}

// revoke cancels a granted lease and re-pends its shard. The epoch bump makes
// the in-flight attempt's completion notice stale; its worker slot is
// released here, exactly once.
func (c *Coordinator) revoke(l *lease, mu *sync.Mutex, reason string, emit func(Event)) {
	mu.Lock()
	l.epoch++
	l.state = leasePending
	mu.Unlock()
	age := time.Since(l.grantedAt)
	emit(Event{Kind: "revoke", Shard: l.shard, Worker: l.worker.url, Attempt: l.attempts, Age: age, Reason: reason})
	c.log.Warn("lease revoked", "shard", l.shard.ID, "worker", l.worker.url, "age", age, "reason", reason)
	if l.cancel != nil {
		l.cancel()
	}
	c.mon.release(l.worker, false)
	l.worker = nil
}

// finishAttempt folds one dispatch goroutine's completion into the lease
// table. Stale notices (the lease was revoked and the epoch moved on) only
// tidy the goroutine; current ones either complete the shard or re-pend it.
func (c *Coordinator) finishAttempt(d attemptDone, mu *sync.Mutex, done map[int]bool, results map[int]scenario.MachineResult, leases []*lease, doneShards *int, emit func(Event)) {
	l := d.l
	if l.epoch != d.epoch {
		return // revoked while in flight; the slot was released at revoke time
	}
	if l.cancel != nil {
		l.cancel()
		l.cancel = nil
	}
	mu.Lock()
	complete := len(c.remaining(l, done, results)) == 0
	if complete {
		l.state = leaseDone
	} else {
		l.state = leasePending
	}
	mu.Unlock()

	if !d.local {
		c.mon.release(l.worker, complete && d.err == nil)
	}
	age := time.Since(l.grantedAt)

	if complete {
		// Results cover the shard — even if the stream then erred, the work
		// is done (a terminal-line hiccup after the last machine landed).
		worker := ""
		if l.worker != nil {
			worker = l.worker.url
		}
		if d.err != nil && !d.local {
			emit(Event{Kind: "revoke", Shard: l.shard, Worker: worker, Attempt: l.attempts, Age: age, Reason: "stream error after full delivery: " + d.err.Error()})
		}
		emit(Event{Kind: "done", Shard: l.shard, Worker: worker, Attempt: l.attempts, Age: age})
		l.worker = nil
		*doneShards++
		return
	}

	if d.local {
		// Local failure surfaces to Run's caller (deterministic engine error
		// or cancellation); the shard stays pending so a cancelled drain is
		// coherent.
		return
	}

	reason := "incomplete shard stream"
	if d.err != nil {
		reason = d.err.Error()
	}
	emit(Event{Kind: "revoke", Shard: l.shard, Worker: l.worker.url, Attempt: l.attempts, Age: age, Reason: reason})
	c.log.Warn("shard attempt failed", "shard", l.shard.ID, "worker", l.worker.url, "attempt", l.attempts, "err", reason)
	l.worker = nil
}

// drain cancels every in-flight attempt and waits for their completion
// notices, so Run never leaks dispatch goroutines on cancellation.
func (c *Coordinator) drain(leases []*lease, resCh chan attemptDone, inflight int) {
	for _, l := range leases {
		if l.cancel != nil {
			l.cancel()
		}
	}
	for i := 0; i < inflight; i++ {
		d := <-resCh
		if !d.local && d.l.epoch == d.epoch && d.l.worker != nil {
			c.mon.release(d.l.worker, false)
			d.l.worker = nil
		}
	}
}

// discardHandler is a no-op slog handler (slog.DiscardHandler arrived after
// the Go version this repo pins).
type discardHandler struct{}

func (discardHandler) Enabled(context.Context, slog.Level) bool  { return false }
func (discardHandler) Handle(context.Context, slog.Record) error { return nil }
func (discardHandler) WithAttrs([]slog.Attr) slog.Handler        { return discardHandler{} }
func (discardHandler) WithGroup(string) slog.Handler             { return discardHandler{} }
