package cluster

import (
	"sync"
	"time"
)

// Breaker states.
const (
	BreakerClosed   = "closed"    // dispatches flow
	BreakerOpen     = "open"      // dispatches refused until the cooldown passes
	BreakerHalfOpen = "half-open" // one probe dispatch in flight; its outcome decides
)

// Breaker is a per-worker circuit breaker over shard dispatches. Consecutive
// failures past the threshold open it; after the cooldown one probe dispatch
// is allowed through (half-open), and that probe's outcome either closes the
// breaker or re-opens it for another cooldown. It protects the lease table
// from burning its shard attempt budget against a worker that fails fast —
// connection refused in microseconds would otherwise exhaust every retry
// before a slower, healthy worker got a look.
type Breaker struct {
	mu        sync.Mutex
	state     string
	fails     int
	openedAt  time.Time
	probing   bool // half-open: the single probe slot is taken
	threshold int
	cooldown  time.Duration
	now       func() time.Time // injectable for tests
}

// NewBreaker builds a closed breaker. threshold is the consecutive-failure
// count that opens it (min 1); cooldown is the open->half-open delay.
func NewBreaker(threshold int, cooldown time.Duration) *Breaker {
	if threshold < 1 {
		threshold = 1
	}
	return &Breaker{state: BreakerClosed, threshold: threshold, cooldown: cooldown, now: time.Now}
}

// Allow reports whether a dispatch may proceed. In half-open state exactly
// one caller gets true (the probe); everyone else waits for its verdict.
func (b *Breaker) Allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		return true
	case BreakerOpen:
		if b.now().Sub(b.openedAt) < b.cooldown {
			return false
		}
		b.state = BreakerHalfOpen
		b.probing = true
		return true
	default: // half-open
		if b.probing {
			return false
		}
		b.probing = true
		return true
	}
}

// Success records a completed dispatch: the breaker closes and the failure
// streak resets.
func (b *Breaker) Success() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.state = BreakerClosed
	b.fails = 0
	b.probing = false
}

// Fail records a failed dispatch. A half-open probe failure re-opens
// immediately; in closed state the streak must reach the threshold.
func (b *Breaker) Fail() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.fails++
	if b.state == BreakerHalfOpen || b.fails >= b.threshold {
		b.state = BreakerOpen
		b.openedAt = b.now()
		b.probing = false
	}
}

// State returns the breaker state name for status documents.
func (b *Breaker) State() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == BreakerOpen && b.now().Sub(b.openedAt) >= b.cooldown {
		return BreakerHalfOpen // cooldown served; next Allow admits the probe
	}
	return b.state
}
