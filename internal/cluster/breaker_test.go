package cluster

import (
	"testing"
	"time"
)

func TestBreakerOpensAfterThreshold(t *testing.T) {
	b := NewBreaker(3, time.Hour)
	for i := 0; i < 2; i++ {
		b.Fail()
		if !b.Allow() {
			t.Fatalf("breaker refused dispatch after %d/3 failures", i+1)
		}
	}
	b.Fail()
	if b.State() != BreakerOpen {
		t.Fatalf("state %q after threshold failures, want open", b.State())
	}
	if b.Allow() {
		t.Fatal("open breaker admitted a dispatch inside cooldown")
	}
}

func TestBreakerSuccessResetsStreak(t *testing.T) {
	b := NewBreaker(3, time.Hour)
	b.Fail()
	b.Fail()
	b.Success()
	b.Fail()
	b.Fail()
	if b.State() != BreakerClosed {
		t.Fatalf("state %q, want closed: success should reset the failure streak", b.State())
	}
}

func TestBreakerHalfOpenProbe(t *testing.T) {
	clock := time.Now()
	b := NewBreaker(1, time.Minute)
	b.now = func() time.Time { return clock }
	b.Fail()
	if b.Allow() {
		t.Fatal("open breaker admitted a dispatch")
	}

	clock = clock.Add(2 * time.Minute)
	if b.State() != BreakerHalfOpen {
		t.Fatalf("state %q after cooldown, want half-open", b.State())
	}
	if !b.Allow() {
		t.Fatal("half-open breaker refused the probe dispatch")
	}
	if b.Allow() {
		t.Fatal("half-open breaker admitted a second concurrent probe")
	}

	// Probe failure re-opens for a fresh cooldown.
	b.Fail()
	if b.State() != BreakerOpen || b.Allow() {
		t.Fatalf("state %q after probe failure, want open and refusing", b.State())
	}

	// After another cooldown, a successful probe closes it fully.
	clock = clock.Add(2 * time.Minute)
	if !b.Allow() {
		t.Fatal("second probe refused")
	}
	b.Success()
	if b.State() != BreakerClosed || !b.Allow() || !b.Allow() {
		t.Fatalf("state %q after probe success, want closed and freely admitting", b.State())
	}
}

func TestPlanCoversFleetExactly(t *testing.T) {
	for _, tc := range []struct{ n, target, want int }{
		{100, 8, 8},
		{7, 3, 3},
		{3, 8, 3},  // target clamps to fleet size
		{5, 0, 1},  // degenerate target
		{0, 4, 0},  // empty fleet
		{-2, 4, 0}, // nonsense fleet
	} {
		shards := Plan(tc.n, tc.target)
		if len(shards) != tc.want {
			t.Fatalf("Plan(%d,%d) made %d shards, want %d", tc.n, tc.target, len(shards), tc.want)
		}
		next := 0
		for i, s := range shards {
			if s.ID != i || s.From != next || s.Size() < 1 {
				t.Fatalf("Plan(%d,%d)[%d] = %+v: not contiguous from %d", tc.n, tc.target, i, s, next)
			}
			next = s.To
		}
		if tc.n > 0 && next != tc.n {
			t.Fatalf("Plan(%d,%d) covers [0,%d), want [0,%d)", tc.n, tc.target, next, tc.n)
		}
	}
	// Near-equal: sizes differ by at most one.
	shards := Plan(10, 3)
	for _, s := range shards {
		if s.Size() != 3 && s.Size() != 4 {
			t.Fatalf("Plan(10,3) shard %+v: size %d not near-equal", s, s.Size())
		}
	}
}
