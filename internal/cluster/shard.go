// Package cluster is dimd's distributed tier: it splits an independent-fleet
// scenario into deterministic machine-range shards, grants each shard to a
// worker under a TTL lease, health-checks workers by heartbeat, and — the
// headline property — survives losing them: a missed heartbeat, a dispatch
// error budget exhausted, a stalled stream, or a kill -9 mid-shard revokes
// the lease and re-dispatches the remaining machines elsewhere (or, when no
// worker is left standing, runs them locally in degraded mode). Because every
// machine is a deterministic function of its spec-derived trial, results are
// deduplicated first-wins by machine index and the merged fleet is
// byte-identical to a single-node run regardless of which failures occurred.
//
// The package is transport-agnostic: dispatch, health probes and the local
// fallback are injected callbacks (internal/service provides the HTTP
// implementations), so the lease/retry/degrade machinery is unit-testable
// with in-process fakes.
package cluster

// Shard is one contiguous machine-index range [From, To) of a compiled
// fleet. ID is the shard's position in plan order — stable for a given
// (machines, shard count) pair, so logs and traces from different attempts
// of the same shard correlate.
type Shard struct {
	ID   int `json:"id"`
	From int `json:"from"`
	To   int `json:"to"`
}

// Size returns the number of machines the shard covers.
func (s Shard) Size() int { return s.To - s.From }

// Plan splits machines [0, n) into at most target contiguous shards of
// near-equal size (earlier shards take the remainder machines). The split is
// a pure function of its inputs: every coordinator restart re-plans the
// identical shard table, which is what lets a recovered job's checkpoint
// indices map back onto in-flight shards.
func Plan(n, target int) []Shard {
	if n <= 0 {
		return nil
	}
	if target < 1 {
		target = 1
	}
	if target > n {
		target = n
	}
	base, rem := n/target, n%target
	shards := make([]Shard, target)
	from := 0
	for i := range shards {
		size := base
		if i < rem {
			size++
		}
		shards[i] = Shard{ID: i, From: from, To: from + size}
		from += size
	}
	return shards
}
