package cluster

import (
	"context"
	"errors"
	"sort"
	"sync"
	"testing"
	"time"

	"repro/internal/scenario"
)

// fakeFleet tracks which machine indices were delivered and how, across a
// coordinator run driven by in-process fake transports.
type fakeFleet struct {
	mu       sync.Mutex
	attempts map[int]int // shard ID -> dispatch count (remote only)
	byWorker map[string]int
	events   []Event
}

func newFakeFleet() *fakeFleet {
	return &fakeFleet{attempts: map[int]int{}, byWorker: map[string]int{}}
}

func (f *fakeFleet) bump(sh Shard, url string) int {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.attempts[sh.ID]++
	f.byWorker[url]++
	return f.attempts[sh.ID]
}

func (f *fakeFleet) record(e Event) {
	f.mu.Lock()
	f.events = append(f.events, e)
	f.mu.Unlock()
}

// stream delivers the shard's non-skipped machines through onResult.
func stream(sh Shard, skip []int, onResult func(scenario.MachineResult)) {
	skipSet := map[int]bool{}
	for _, i := range skip {
		skipSet[i] = true
	}
	for i := sh.From; i < sh.To; i++ {
		if !skipSet[i] {
			onResult(scenario.MachineResult{Index: i})
		}
	}
}

func testCfg(workers ...string) Config {
	return Config{
		Workers:          workers,
		LeaseTTL:         80 * time.Millisecond,
		HeartbeatEvery:   10 * time.Millisecond,
		ProbeTimeout:     10 * time.Millisecond,
		UnhealthyAfter:   2,
		BreakerThreshold: 2,
		BreakerCooldown:  time.Hour,
		ShardsPerWorker:  2,
		MaxPerWorker:     2,
		MaxShardAttempts: 3,
	}
}

func healthyProbe(context.Context, string) error { return nil }

// noLocal is the Local callback for tests where the degraded path must not run.
func noLocal(t *testing.T) func(context.Context, Shard, []int, func(scenario.MachineResult)) error {
	return func(ctx context.Context, sh Shard, skip []int, onResult func(scenario.MachineResult)) error {
		t.Errorf("local fallback ran for shard %+v", sh)
		return nil
	}
}

func checkCoverage(t *testing.T, out Outcome, n int, doneBefore []int) {
	t.Helper()
	have := map[int]bool{}
	for _, i := range doneBefore {
		have[i] = true
	}
	for _, r := range out.Results {
		if have[r.Index] {
			t.Fatalf("machine %d delivered twice (or despite checkpoint)", r.Index)
		}
		have[r.Index] = true
	}
	if len(have) != n {
		t.Fatalf("coverage %d/%d machines", len(have), n)
	}
	if !sort.SliceIsSorted(out.Results, func(a, b int) bool { return out.Results[a].Index < out.Results[b].Index }) {
		t.Fatal("Outcome.Results not index-sorted")
	}
}

func TestRunHealthyWorkers(t *testing.T) {
	f := newFakeFleet()
	c := New(testCfg("w1", "w2"), healthyProbe, nil)
	defer c.Stop()

	out, err := c.Run(context.Background(), RunReq{
		Machines: 23,
		OnEvent:  f.record,
		Dispatch: func(ctx context.Context, url string, sh Shard, skip []int, onResult func(scenario.MachineResult)) error {
			f.bump(sh, url)
			stream(sh, skip, onResult)
			return nil
		},
		Local: func(ctx context.Context, sh Shard, skip []int, onResult func(scenario.MachineResult)) error {
			t.Error("local fallback ran with healthy workers")
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	checkCoverage(t, out, 23, nil)
	if out.Degraded || out.LocalShards != 0 || out.Redispatches != 0 || out.Expirations != 0 {
		t.Fatalf("healthy run reported failure handling: %+v", out)
	}
	if f.byWorker["w1"] == 0 || f.byWorker["w2"] == 0 {
		t.Fatalf("load not spread: %v", f.byWorker)
	}
}

func TestRunSkipsCheckpointIndices(t *testing.T) {
	f := newFakeFleet()
	done := []int{0, 1, 2, 3, 4, 7, 11}
	c := New(testCfg("w1"), healthyProbe, nil)
	defer c.Stop()

	var streamed []int
	var mu sync.Mutex
	out, err := c.Run(context.Background(), RunReq{
		Machines: 12,
		Done:     done,
		Dispatch: func(ctx context.Context, url string, sh Shard, skip []int, onResult func(scenario.MachineResult)) error {
			f.bump(sh, url)
			for _, i := range skip {
				for _, d := range done {
					if i == d && (i < sh.From || i >= sh.To) {
						t.Errorf("skip index %d outside shard %+v", i, sh)
					}
				}
			}
			stream(sh, skip, onResult)
			return nil
		},
		Local: noLocal(t),
		OnResult: func(m scenario.MachineResult) {
			mu.Lock()
			streamed = append(streamed, m.Index)
			mu.Unlock()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	checkCoverage(t, out, 12, done)
	for _, i := range streamed {
		for _, d := range done {
			if i == d {
				t.Fatalf("checkpointed machine %d recomputed", i)
			}
		}
	}
	if len(streamed) != 12-len(done) {
		t.Fatalf("OnResult fired %d times, want %d", len(streamed), 12-len(done))
	}
}

// TestRunRedispatchAfterPartialStream kills a shard's first attempt midway and
// checks the redispatch resumes from the delivered results instead of
// recomputing them.
func TestRunRedispatchAfterPartialStream(t *testing.T) {
	f := newFakeFleet()
	var mu sync.Mutex
	resumeSkips := map[int][]int{}
	c := New(testCfg("w1", "w2"), healthyProbe, nil)
	defer c.Stop()

	out, err := c.Run(context.Background(), RunReq{
		Machines: 16,
		OnEvent:  f.record,
		Dispatch: func(ctx context.Context, url string, sh Shard, skip []int, onResult func(scenario.MachineResult)) error {
			n := f.bump(sh, url)
			if sh.ID == 0 && n == 1 {
				// Deliver exactly one machine, then die.
				onResult(scenario.MachineResult{Index: sh.From})
				return errors.New("connection reset by peer")
			}
			if sh.ID == 0 {
				mu.Lock()
				resumeSkips[n] = append([]int(nil), skip...)
				mu.Unlock()
			}
			stream(sh, skip, onResult)
			return nil
		},
		Local: noLocal(t),
	})
	if err != nil {
		t.Fatal(err)
	}
	checkCoverage(t, out, 16, nil)
	if out.Redispatches != 1 {
		t.Fatalf("redispatches = %d, want 1", out.Redispatches)
	}
	if out.Degraded {
		t.Fatal("redispatch must not mark the run degraded")
	}
	sh0 := Plan(16, 4)[0]
	if got := resumeSkips[2]; len(got) != 1 || got[0] != sh0.From {
		t.Fatalf("redispatch skip list %v, want [%d] (the delivered machine)", got, sh0.From)
	}
	var sawRevoke bool
	f.mu.Lock()
	for _, e := range f.events {
		if e.Kind == "revoke" && e.Shard.ID == 0 {
			sawRevoke = true
		}
	}
	f.mu.Unlock()
	if !sawRevoke {
		t.Fatal("no revoke event for the failed attempt")
	}
}

// TestRunLeaseExpiryOnStall stalls a shard's first attempt without streaming
// anything; the lease watchdog must revoke it and redispatch.
func TestRunLeaseExpiryOnStall(t *testing.T) {
	f := newFakeFleet()
	c := New(testCfg("w1", "w2"), healthyProbe, nil)
	defer c.Stop()

	out, err := c.Run(context.Background(), RunReq{
		Machines: 16,
		OnEvent:  f.record,
		Dispatch: func(ctx context.Context, url string, sh Shard, skip []int, onResult func(scenario.MachineResult)) error {
			n := f.bump(sh, url)
			if sh.ID == 1 && n == 1 {
				<-ctx.Done() // stall silently until the revoke cancels us
				return ctx.Err()
			}
			stream(sh, skip, onResult)
			return nil
		},
		Local: noLocal(t),
	})
	if err != nil {
		t.Fatal(err)
	}
	checkCoverage(t, out, 16, nil)
	if out.Expirations != 1 {
		t.Fatalf("expirations = %d, want 1", out.Expirations)
	}
	var expired *Event
	f.mu.Lock()
	for i, e := range f.events {
		if e.Kind == "revoke" && e.Reason == ReasonExpired {
			expired = &f.events[i]
		}
	}
	f.mu.Unlock()
	if expired == nil {
		t.Fatal("no lease-expired revoke event")
	}
	if expired.Age < 80*time.Millisecond {
		t.Fatalf("lease revoked after %v, before its %v TTL", expired.Age, 80*time.Millisecond)
	}
}

// TestRunStreamingRenewsLease pins the progress-based TTL: an attempt that
// keeps streaming, however slowly it finishes, is never revoked.
func TestRunStreamingRenewsLease(t *testing.T) {
	cfg := testCfg("w1")
	cfg.ShardsPerWorker = 1
	cfg.MaxPerWorker = 1
	c := New(cfg, healthyProbe, nil)
	defer c.Stop()

	out, err := c.Run(context.Background(), RunReq{
		Machines: 6, // 6*40ms = 3x TTL overall
		Dispatch: func(ctx context.Context, url string, sh Shard, skip []int, onResult func(scenario.MachineResult)) error {
			for i := sh.From; i < sh.To; i++ {
				select {
				case <-ctx.Done():
					return ctx.Err()
				case <-time.After(40 * time.Millisecond): // half the TTL per machine
				}
				onResult(scenario.MachineResult{Index: i})
			}
			return nil
		},
		Local: noLocal(t),
	})
	if err != nil {
		t.Fatal(err)
	}
	checkCoverage(t, out, 6, nil)
	if out.Expirations != 0 || out.Redispatches != 0 {
		t.Fatalf("slow-but-streaming attempt was disturbed: %+v", out)
	}
}

// TestRunDegradesToLocalWhenAllWorkersDead is the total-outage contract: the
// job still completes, locally, and reports degraded.
func TestRunDegradesToLocalWhenAllWorkersDead(t *testing.T) {
	f := newFakeFleet()
	c := New(testCfg("w1", "w2"),
		func(context.Context, string) error { return errors.New("connection refused") }, nil)
	defer c.Stop()

	out, err := c.Run(context.Background(), RunReq{
		Machines: 9,
		OnEvent:  f.record,
		Dispatch: func(ctx context.Context, url string, sh Shard, skip []int, onResult func(scenario.MachineResult)) error {
			f.bump(sh, url)
			return errors.New("connection refused")
		},
		Local: func(ctx context.Context, sh Shard, skip []int, onResult func(scenario.MachineResult)) error {
			stream(sh, skip, onResult)
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	checkCoverage(t, out, 9, nil)
	if !out.Degraded {
		t.Fatal("total worker outage did not report degraded")
	}
	if out.LocalShards == 0 {
		t.Fatal("no shard ran locally despite dead workers")
	}
	var sawLocal bool
	f.mu.Lock()
	for _, e := range f.events {
		if e.Kind == "local" {
			sawLocal = true
		}
	}
	f.mu.Unlock()
	if !sawLocal {
		t.Fatal("no local event emitted")
	}
}

// TestRunShardAttemptBudget degrades a single cursed shard to local once its
// remote attempts are exhausted, while other shards stay remote.
func TestRunShardAttemptBudget(t *testing.T) {
	f := newFakeFleet()
	var localShards []int
	var mu sync.Mutex
	cfg := testCfg("w1", "w2")
	cfg.BreakerThreshold = 100 // keep workers dispatchable so the shard budget, not the breaker, decides
	c := New(cfg, healthyProbe, nil)
	defer c.Stop()

	out, err := c.Run(context.Background(), RunReq{
		Machines: 16,
		OnEvent:  f.record,
		Dispatch: func(ctx context.Context, url string, sh Shard, skip []int, onResult func(scenario.MachineResult)) error {
			f.bump(sh, url)
			if sh.ID == 2 {
				return errors.New("worker bug: this shard always crashes remotely")
			}
			stream(sh, skip, onResult)
			return nil
		},
		Local: func(ctx context.Context, sh Shard, skip []int, onResult func(scenario.MachineResult)) error {
			mu.Lock()
			localShards = append(localShards, sh.ID)
			mu.Unlock()
			stream(sh, skip, onResult)
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	checkCoverage(t, out, 16, nil)
	if !out.Degraded || out.LocalShards != 1 {
		t.Fatalf("want exactly the cursed shard degraded: %+v", out)
	}
	if len(localShards) != 1 || localShards[0] != 2 {
		t.Fatalf("local shards %v, want [2]", localShards)
	}
	if f.attempts[2] != cfg.MaxShardAttempts {
		t.Fatalf("cursed shard got %d remote attempts, want %d", f.attempts[2], cfg.MaxShardAttempts)
	}
}

func TestRunLocalErrorIsTerminal(t *testing.T) {
	engineErr := errors.New("scenario \"x\": machine 3: integrator blew up")
	c := New(testCfg("w1"),
		func(context.Context, string) error { return errors.New("connection refused") }, nil)
	defer c.Stop()

	_, err := c.Run(context.Background(), RunReq{
		Machines: 4,
		Dispatch: func(ctx context.Context, url string, sh Shard, skip []int, onResult func(scenario.MachineResult)) error {
			return errors.New("connection refused")
		},
		Local: func(ctx context.Context, sh Shard, skip []int, onResult func(scenario.MachineResult)) error {
			return engineErr
		},
	})
	if !errors.Is(err, engineErr) {
		t.Fatalf("err = %v, want the local engine error", err)
	}
}

func TestRunHonoursCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	started := make(chan struct{}, 64)
	c := New(testCfg("w1", "w2"), healthyProbe, nil)
	defer c.Stop()

	errCh := make(chan error, 1)
	go func() {
		_, err := c.Run(ctx, RunReq{
			Machines: 10,
			Dispatch: func(ctx context.Context, url string, sh Shard, skip []int, onResult func(scenario.MachineResult)) error {
				started <- struct{}{}
				<-ctx.Done()
				return ctx.Err()
			},
			Local: noLocal(t),
		})
		errCh <- err
	}()
	<-started
	cancel()
	select {
	case err := <-errCh:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Run did not return after cancellation")
	}
}

func TestMonitorMarksDeadWorkerUnhealthy(t *testing.T) {
	var mu sync.Mutex
	alive := map[string]bool{"w1": true, "w2": false}
	transitions := map[string][]bool{}
	cfg := testCfg("w1", "w2")
	c := New(cfg, func(_ context.Context, url string) error {
		mu.Lock()
		defer mu.Unlock()
		if alive[url] {
			return nil
		}
		return errors.New("down")
	}, func(url string, healthy bool) {
		mu.Lock()
		transitions[url] = append(transitions[url], healthy)
		mu.Unlock()
	})
	defer c.Stop()

	deadline := time.Now().Add(2 * time.Second)
	for c.Monitor().HealthyCount() != 1 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if n := c.Monitor().HealthyCount(); n != 1 {
		t.Fatalf("healthy count %d, want 1", n)
	}

	// Revive w2: first successful probe heals it.
	mu.Lock()
	alive["w2"] = true
	mu.Unlock()
	deadline = time.Now().Add(2 * time.Second)
	for c.Monitor().HealthyCount() != 2 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if n := c.Monitor().HealthyCount(); n != 2 {
		t.Fatalf("healthy count %d after revival, want 2", n)
	}

	mu.Lock()
	defer mu.Unlock()
	if got := transitions["w2"]; len(got) < 2 || got[0] != false || got[len(got)-1] != true {
		t.Fatalf("w2 transitions %v, want down then up", got)
	}
	snap := c.Monitor().Snapshot()
	if len(snap) != 2 || snap[0].URL != "w1" || !snap[1].Healthy {
		t.Fatalf("snapshot %+v", snap)
	}
}
