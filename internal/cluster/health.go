package cluster

import (
	"context"
	"sync"
	"time"
)

// workerState is one worker's live bookkeeping: heartbeat health, dispatch
// breaker, and in-flight shard accounting.
type workerState struct {
	url     string
	breaker *Breaker

	mu          sync.Mutex
	healthy     bool
	misses      int // consecutive failed heartbeats
	lastProbe   time.Time
	inflight    int
	shardsDone  int64
	shardErrors int64
}

// WorkerStatus is one worker's snapshot for status documents and per-worker
// metric series.
type WorkerStatus struct {
	URL               string    `json:"url"`
	Healthy           bool      `json:"healthy"`
	Breaker           string    `json:"breaker"`
	ConsecutiveMisses int       `json:"consecutive_misses,omitempty"`
	InFlightShards    int       `json:"inflight_shards"`
	ShardsDone        int64     `json:"shards_done"`
	ShardErrors       int64     `json:"shard_errors"`
	LastProbe         time.Time `json:"last_probe"`
}

// Monitor heartbeats a static worker set. A worker is marked unhealthy after
// UnhealthyAfter consecutive probe failures and healthy again on the first
// success — recovery is immediate, suspicion is debounced. The probe itself
// is injected (the service layer supplies an HTTP GET with a deadline).
type Monitor struct {
	workers  []*workerState
	probe    func(ctx context.Context, url string) error
	every    time.Duration
	timeout  time.Duration
	after    int
	onHealth func(url string, healthy bool) // fires on transitions only; may be nil

	stop chan struct{}
	wg   sync.WaitGroup
}

func newMonitor(urls []string, cfg Config, probe func(ctx context.Context, url string) error, onHealth func(string, bool)) *Monitor {
	m := &Monitor{
		probe:    probe,
		every:    cfg.HeartbeatEvery,
		timeout:  cfg.ProbeTimeout,
		after:    cfg.UnhealthyAfter,
		onHealth: onHealth,
		stop:     make(chan struct{}),
	}
	for _, u := range urls {
		m.workers = append(m.workers, &workerState{
			url: u,
			// Optimistically healthy: the first dispatch should not wait a
			// heartbeat round; a dead worker fails its dispatch and its first
			// probes, and the breaker bridges the gap.
			healthy: true,
			breaker: NewBreaker(cfg.BreakerThreshold, cfg.BreakerCooldown),
		})
	}
	return m
}

// Start launches the heartbeat loop (first round immediately).
func (m *Monitor) Start() {
	m.wg.Add(1)
	go func() {
		defer m.wg.Done()
		t := time.NewTicker(m.every)
		defer t.Stop()
		for {
			m.probeAll()
			select {
			case <-t.C:
			case <-m.stop:
				return
			}
		}
	}()
}

// Stop halts the heartbeat loop and waits for in-flight probes.
func (m *Monitor) Stop() {
	close(m.stop)
	m.wg.Wait()
}

func (m *Monitor) probeAll() {
	for _, w := range m.workers {
		ctx, cancel := context.WithTimeout(context.Background(), m.timeout)
		err := m.probe(ctx, w.url)
		cancel()
		w.mu.Lock()
		w.lastProbe = time.Now()
		was := w.healthy
		if err != nil {
			w.misses++
			if w.misses >= m.after {
				w.healthy = false
			}
		} else {
			w.misses = 0
			w.healthy = true
		}
		now := w.healthy
		w.mu.Unlock()
		if was != now && m.onHealth != nil {
			m.onHealth(w.url, now)
		}
		select {
		case <-m.stop:
			return
		default:
		}
	}
}

// available reports whether w can take a dispatch: heartbeat-healthy, breaker
// admitting, and under the per-worker concurrency cap.
func (w *workerState) available(maxPer int) bool {
	w.mu.Lock()
	ok := w.healthy && w.inflight < maxPer
	w.mu.Unlock()
	return ok && w.breaker.Allow()
}

// acquire picks the least-loaded available worker and claims a dispatch slot;
// nil when none qualifies. Preference order is deterministic (load, then list
// position) — irrelevant to output bytes (the merge is index-ordered) but it
// keeps dispatch logs reproducible in the fake-transport tests.
func (m *Monitor) acquire(maxPer int) *workerState {
	var best *workerState
	bestLoad := maxPer
	for _, w := range m.workers {
		w.mu.Lock()
		load, healthy := w.inflight, w.healthy
		w.mu.Unlock()
		if !healthy || load >= maxPer || load >= bestLoad {
			continue
		}
		if w.breaker.Allow() {
			best, bestLoad = w, load
		}
	}
	if best != nil {
		best.mu.Lock()
		best.inflight++
		best.mu.Unlock()
	}
	return best
}

// release returns a dispatch slot and records the attempt's outcome in the
// worker's counters and breaker.
func (m *Monitor) release(w *workerState, ok bool) {
	w.mu.Lock()
	w.inflight--
	if ok {
		w.shardsDone++
	} else {
		w.shardErrors++
	}
	w.mu.Unlock()
	if ok {
		w.breaker.Success()
	} else {
		w.breaker.Fail()
	}
}

// anyAvailable reports whether some worker could take a dispatch right now.
func (m *Monitor) anyAvailable(maxPer int) bool {
	for _, w := range m.workers {
		if w.available(maxPer) {
			return true
		}
	}
	return false
}

// HealthyCount returns how many workers are currently heartbeat-healthy.
func (m *Monitor) HealthyCount() int {
	n := 0
	for _, w := range m.workers {
		w.mu.Lock()
		if w.healthy {
			n++
		}
		w.mu.Unlock()
	}
	return n
}

// WorkerCount returns the static worker-set size.
func (m *Monitor) WorkerCount() int { return len(m.workers) }

// Snapshot returns every worker's status in list order.
func (m *Monitor) Snapshot() []WorkerStatus {
	out := make([]WorkerStatus, 0, len(m.workers))
	for _, w := range m.workers {
		w.mu.Lock()
		out = append(out, WorkerStatus{
			URL:               w.url,
			Healthy:           w.healthy,
			Breaker:           w.breaker.State(),
			ConsecutiveMisses: w.misses,
			InFlightShards:    w.inflight,
			ShardsDone:        w.shardsDone,
			ShardErrors:       w.shardErrors,
			LastProbe:         w.lastProbe,
		})
		w.mu.Unlock()
	}
	return out
}
