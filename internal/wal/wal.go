// Package wal is the append-only journal underneath dimd's crash safety: a
// single file of length-prefixed, CRC-guarded records, written with batched
// fsyncs and read back with a corruption-tolerant scanner that treats a torn
// tail as "the crash happened here", not as data loss.
//
// Record framing (little-endian):
//
//	u32 payload length | u32 CRC-32C (Castagnoli) of payload | payload bytes
//
// Durability discipline: appends buffer in the OS page cache; Sync flushes
// and fsyncs. Callers pick the batching — the service fsyncs unconditionally
// on completion records (a result must never be acknowledged before it is
// durable) and coalesces submission records. A record that fails its CRC, or
// a frame that runs past EOF, ends the replay: everything before it is
// intact by induction (records are only ever appended), everything from it
// on is the torn tail of the interrupted final write and is truncated on the
// next open so the journal never accretes garbage mid-file.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync"
	"time"

	"repro/internal/faultinject"
)

// maxRecord bounds a single record; a frame longer than this is treated as
// corruption (a garbage length prefix would otherwise ask for gigabytes).
const maxRecord = 16 << 20

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Log is an open journal. Append/Sync are safe for concurrent use.
type Log struct {
	mu      sync.Mutex
	f       *os.File
	dirty   bool // appended since last fsync
	onFsync func(seconds float64)

	// running totals since Open, for Stats
	appends int64
	bytes   int64
	fsyncs  int64
}

// Stats is a point-in-time journal health summary — what a daemon snapshot
// embeds so an incident dump shows how much journal the crash-recovery path
// would have to replay.
type Stats struct {
	// Appends and Bytes count records and payload+frame bytes written since
	// Open (not lifetime file totals — Open does not re-count the replay).
	Appends int64 `json:"appends"`
	Bytes   int64 `json:"bytes"`
	// Fsyncs counts completed Sync flushes; Dirty reports appends not yet
	// fsynced — nonzero at a crash is exactly the torn-tail window.
	Fsyncs int64 `json:"fsyncs"`
	Dirty  bool  `json:"dirty"`
}

// Stats returns the journal's running write totals.
func (l *Log) Stats() Stats {
	l.mu.Lock()
	defer l.mu.Unlock()
	return Stats{Appends: l.appends, Bytes: l.bytes, Fsyncs: l.fsyncs, Dirty: l.dirty}
}

// SetFsyncObserver installs fn, called with each fsync's wall-clock duration
// in seconds — the seam the daemon's dimd_wal_fsync_seconds histogram hangs
// on. Observability only: fn sees timings after the fsync completed and must
// not block (it runs under the log's lock, like the fsync itself).
func (l *Log) SetFsyncObserver(fn func(seconds float64)) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.onFsync = fn
}

// ReplayStats describes what Open found in an existing journal.
type ReplayStats struct {
	// Records is the number of intact records replayed.
	Records int
	// Truncated is true when a torn tail was found and cut; TruncatedAt is
	// the byte offset it started at.
	Truncated   bool
	TruncatedAt int64
}

// Open opens (creating if absent) the journal at path, replays every intact
// record through fn, truncates any torn tail, and returns the log positioned
// for appending. fn may be nil to skip replay contents (stats still count).
func Open(path string, fn func(payload []byte) error) (*Log, ReplayStats, error) {
	var stats ReplayStats
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return nil, stats, err
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, stats, err
	}

	var off int64
	var hdr [8]byte
	buf := []byte{}
	for {
		if _, err := io.ReadFull(f, hdr[:]); err != nil {
			if errors.Is(err, io.EOF) {
				break // clean end
			}
			// io.ErrUnexpectedEOF: a torn header — the tail.
			stats.Truncated, stats.TruncatedAt = true, off
			break
		}
		n := binary.LittleEndian.Uint32(hdr[0:4])
		sum := binary.LittleEndian.Uint32(hdr[4:8])
		if n > maxRecord {
			stats.Truncated, stats.TruncatedAt = true, off
			break
		}
		if cap(buf) < int(n) {
			buf = make([]byte, n)
		}
		buf = buf[:n]
		if _, err := io.ReadFull(f, buf); err != nil {
			stats.Truncated, stats.TruncatedAt = true, off
			break
		}
		if crc32.Checksum(buf, castagnoli) != sum {
			stats.Truncated, stats.TruncatedAt = true, off
			break
		}
		if fn != nil {
			if err := fn(buf); err != nil {
				f.Close()
				return nil, stats, fmt.Errorf("wal: replaying record %d: %w", stats.Records, err)
			}
		}
		stats.Records++
		off += 8 + int64(n)
	}

	if stats.Truncated {
		if err := f.Truncate(off); err != nil {
			f.Close()
			return nil, stats, fmt.Errorf("wal: truncating torn tail: %w", err)
		}
	}
	if _, err := f.Seek(off, io.SeekStart); err != nil {
		f.Close()
		return nil, stats, err
	}
	return &Log{f: f}, stats, nil
}

// Append frames and writes one record. The bytes reach the OS, not
// necessarily the disk — call Sync to make them durable.
func (l *Log) Append(payload []byte) error {
	if len(payload) > maxRecord {
		return fmt.Errorf("wal: record of %d bytes exceeds limit", len(payload))
	}
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.Checksum(payload, castagnoli))

	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return errors.New("wal: log is closed")
	}
	frame := append(hdr[:], payload...)
	if faultinject.Hit(faultinject.WALPartial) {
		// A torn write: half the frame lands, then the "crash". The file
		// stays open — the caller decides when the process dies — but the
		// journal now ends in a frame the reader must reject.
		_, _ = l.f.Write(frame[:len(frame)/2])
		l.dirty = true
		return fmt.Errorf("wal: %w", errors.New("injected partial write"))
	}
	if _, err := l.f.Write(frame); err != nil {
		return fmt.Errorf("wal: append: %w", err)
	}
	l.dirty = true
	l.appends++
	l.bytes += int64(len(frame))
	return nil
}

// Sync fsyncs pending appends. It is a no-op when nothing was appended since
// the last Sync, so callers can over-call it cheaply.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil || !l.dirty {
		return nil
	}
	if err := faultinject.Error(faultinject.WALFsync); err != nil {
		return err
	}
	t0 := time.Now()
	if err := l.f.Sync(); err != nil {
		return fmt.Errorf("wal: fsync: %w", err)
	}
	if l.onFsync != nil {
		l.onFsync(time.Since(t0).Seconds())
	}
	l.dirty = false
	l.fsyncs++
	return nil
}

// Close syncs and closes the journal.
func (l *Log) Close() error {
	if err := l.Sync(); err != nil {
		l.mu.Lock()
		if l.f != nil {
			l.f.Close()
			l.f = nil
		}
		l.mu.Unlock()
		return err
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return nil
	}
	err := l.f.Close()
	l.f = nil
	return err
}
