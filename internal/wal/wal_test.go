package wal

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/faultinject"
)

func openCollect(t *testing.T, path string) (*Log, ReplayStats, [][]byte) {
	t.Helper()
	var got [][]byte
	l, stats, err := Open(path, func(p []byte) error {
		got = append(got, append([]byte(nil), p...))
		return nil
	})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return l, stats, got
}

func TestAppendReplayRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.wal")
	l, stats, _ := openCollect(t, path)
	if stats.Records != 0 || stats.Truncated {
		t.Fatalf("fresh journal stats = %+v", stats)
	}
	want := [][]byte{[]byte("one"), []byte(""), bytes.Repeat([]byte("x"), 4096)}
	for _, p := range want {
		if err := l.Append(p); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	_, stats, got := openCollect(t, path)
	if stats.Records != len(want) || stats.Truncated {
		t.Fatalf("replay stats = %+v, want %d records untruncated", stats, len(want))
	}
	for i := range want {
		if !bytes.Equal(got[i], want[i]) {
			t.Fatalf("record %d = %q, want %q", i, got[i], want[i])
		}
	}
}

// A torn tail — any prefix of the final frame — must replay every earlier
// record and truncate the garbage, for every possible tear offset.
func TestTornTailEveryOffset(t *testing.T) {
	base := filepath.Join(t.TempDir(), "j.wal")
	l, _, _ := openCollect(t, base)
	recs := [][]byte{[]byte("alpha"), []byte("beta-beta"), []byte("gamma")}
	for _, p := range recs {
		if err := l.Append(p); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	whole, err := os.ReadFile(base)
	if err != nil {
		t.Fatal(err)
	}
	// Last frame starts at len - (8 + len("gamma")).
	lastStart := len(whole) - (8 + len("gamma"))
	for cut := lastStart + 1; cut < len(whole); cut++ {
		p := filepath.Join(t.TempDir(), fmt.Sprintf("cut-%d.wal", cut))
		if err := os.WriteFile(p, whole[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		l2, stats, got := openCollect(t, p)
		if stats.Records != 2 || !stats.Truncated || stats.TruncatedAt != int64(lastStart) {
			t.Fatalf("cut=%d: stats = %+v", cut, stats)
		}
		if len(got) != 2 || !bytes.Equal(got[1], recs[1]) {
			t.Fatalf("cut=%d: replayed %d records", cut, len(got))
		}
		// The truncated journal must accept appends and replay cleanly.
		if err := l2.Append([]byte("after-crash")); err != nil {
			t.Fatal(err)
		}
		if err := l2.Close(); err != nil {
			t.Fatal(err)
		}
		_, stats, got = openCollect(t, p)
		if stats.Records != 3 || stats.Truncated {
			t.Fatalf("cut=%d reopen: stats = %+v", cut, stats)
		}
		if !bytes.Equal(got[2], []byte("after-crash")) {
			t.Fatalf("cut=%d reopen: tail record %q", cut, got[2])
		}
	}
}

// A flipped byte mid-record fails its CRC; replay stops there.
func TestCorruptRecordStopsReplay(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.wal")
	l, _, _ := openCollect(t, path)
	for i := 0; i < 3; i++ {
		if err := l.Append([]byte(fmt.Sprintf("record-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	raw, _ := os.ReadFile(path)
	// Flip a payload byte inside the second record (offset: frame0 + header).
	frame0 := 8 + len("record-0")
	raw[frame0+8+2] ^= 0xff
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	_, stats, got := openCollect(t, path)
	if stats.Records != 1 || !stats.Truncated || stats.TruncatedAt != int64(frame0) {
		t.Fatalf("stats = %+v", stats)
	}
	if len(got) != 1 || string(got[0]) != "record-0" {
		t.Fatalf("replayed %v", got)
	}
}

func TestInjectedPartialWrite(t *testing.T) {
	defer faultinject.Reset()
	path := filepath.Join(t.TempDir(), "j.wal")
	l, _, _ := openCollect(t, path)
	if err := l.Append([]byte("durable")); err != nil {
		t.Fatal(err)
	}
	if err := faultinject.Configure("wal.partial"); err != nil {
		t.Fatal(err)
	}
	if err := l.Append([]byte("torn-record-payload")); err == nil {
		t.Fatal("injected partial write reported no error")
	}
	faultinject.Reset()
	l.Close()

	_, stats, got := openCollect(t, path)
	if stats.Records != 1 || !stats.Truncated {
		t.Fatalf("stats after torn write = %+v", stats)
	}
	if string(got[0]) != "durable" {
		t.Fatalf("surviving record = %q", got[0])
	}
}

func TestInjectedFsyncFailure(t *testing.T) {
	defer faultinject.Reset()
	path := filepath.Join(t.TempDir(), "j.wal")
	l, _, _ := openCollect(t, path)
	if err := l.Append([]byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := faultinject.Configure("wal.fsync"); err != nil {
		t.Fatal(err)
	}
	if err := l.Sync(); err == nil {
		t.Fatal("injected fsync failure reported no error")
	}
	// One-shot fault: the retry succeeds and the data is durable.
	if err := l.Sync(); err != nil {
		t.Fatalf("post-fault Sync: %v", err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestSyncIsIdempotentAndCheap(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.wal")
	l, _, _ := openCollect(t, path)
	for i := 0; i < 3; i++ {
		if err := l.Sync(); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if err := l.Append([]byte("x")); err == nil {
		t.Fatal("append after Close succeeded")
	}
}
