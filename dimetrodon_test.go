package dimetrodon

import (
	"math"
	"sort"
	"strings"
	"testing"
)

func TestQuickstartPath(t *testing.T) {
	// The README's quickstart: build a testbed, inject, measure.
	tb := NewTestbed(TestbedConfig{Seed: 1})
	if err := tb.InstallGlobalPolicy(Policy{P: 0.5, L: 50 * Millisecond}); err != nil {
		t.Fatal(err)
	}
	tb.SpawnBurn("burn", 4)
	tb.Run(20 * Second)
	if tb.Now() != 20*Second {
		t.Errorf("Now = %v", tb.Now())
	}
	work := tb.WorkDone()
	// p=0.5, L=50ms, q=100ms ⇒ throughput fraction 1/(1+0.5) = 2/3.
	want := 4.0 * 20 * 2 / 3
	if math.Abs(work-want)/want > 0.1 {
		t.Errorf("work %v, model predicts ≈%v", work, want)
	}
	if tb.MeanJunctionTemp() <= tb.IdleTemp() {
		t.Error("burning testbed not hotter than idle")
	}
	if tb.MeanPower() < 20 || tb.MeanPower() > 90 {
		t.Errorf("mean power %v implausible", tb.MeanPower())
	}
}

func TestUnconstrainedHotterThanInjected(t *testing.T) {
	run := func(p float64) Celsius {
		tb := NewTestbed(TestbedConfig{Seed: 2})
		if p > 0 {
			if err := tb.InstallGlobalPolicy(Policy{P: p, L: 100 * Millisecond}); err != nil {
				t.Fatal(err)
			}
		}
		tb.SpawnBurn("burn", 4)
		tb.Run(60 * Second)
		return tb.MeanJunctionTemp()
	}
	unconstrained := run(0)
	injected := run(0.75)
	if injected >= unconstrained {
		t.Errorf("p=0.75 (%v) not cooler than unconstrained (%v)", injected, unconstrained)
	}
}

func TestProcessPolicy(t *testing.T) {
	tb := NewTestbed(TestbedConfig{Seed: 3})
	if err := tb.InstallProcessPolicy(1, Policy{P: 0.75, L: 100 * Millisecond}); err != nil {
		t.Fatal(err)
	}
	if err := tb.SpawnSpec("calculix", 1, 2); err != nil {
		t.Fatal(err)
	}
	if err := tb.SpawnSpec("astar", 2, 2); err != nil {
		t.Fatal(err)
	}
	tb.Run(30 * Second)
	// Process 1 is slowed; process 2 runs at full speed.
	w1 := tb.M.ProcessWorkDone(1)
	w2 := tb.M.ProcessWorkDone(2)
	if w2 < 55 { // 2 threads × 30 s, minus noise
		t.Errorf("unmanaged process slowed: %v", w2)
	}
	if w1 > 0.6*w2 {
		t.Errorf("managed process not slowed: %v vs %v", w1, w2)
	}
}

func TestSpawnSpecUnknown(t *testing.T) {
	tb := NewTestbed(TestbedConfig{})
	if err := tb.SpawnSpec("nonexistent", 1, 1); err == nil {
		t.Error("unknown benchmark accepted")
	}
}

func TestInvalidPolicyRejected(t *testing.T) {
	tb := NewTestbed(TestbedConfig{})
	if err := tb.InstallGlobalPolicy(Policy{P: 1.5, L: Millisecond}); err == nil {
		t.Error("invalid policy accepted")
	}
	if err := tb.InstallProcessPolicy(1, Policy{P: -1, L: Millisecond}); err == nil {
		t.Error("invalid process policy accepted")
	}
}

func TestExperimentRegistry(t *testing.T) {
	ids := ExperimentIDs()
	if !sort.StringsAreSorted(ids) {
		t.Error("ExperimentIDs not sorted")
	}
	// One harness per paper artefact plus four ablations and the two
	// future-work extensions (§2.1 online adjustment, §3.2 SMT).
	want := []string{
		"abl-cstate", "abl-deterministic", "abl-hotspot", "abl-kernel", "abl-leakage",
		"ext-adaptive", "ext-emergency", "ext-smt", "ext-ule",
		"fig1", "fig2", "fig3", "fig4", "fig5", "fig6",
		"table1", "val-energy", "val-throughput",
	}
	if len(ids) != len(want) {
		t.Fatalf("ids = %v", ids)
	}
	for i := range want {
		if ids[i] != want[i] {
			t.Errorf("ids[%d] = %q, want %q", i, ids[i], want[i])
		}
	}
	for _, id := range ids {
		e := Experiments[id]
		if e.ID != id || e.Title == "" || e.Summary == "" || e.Run == nil {
			t.Errorf("experiment %q incomplete", id)
		}
	}
}

func TestExportCoversRegistry(t *testing.T) {
	// Every registered experiment must have a CSV export path.
	dir := t.TempDir()
	for _, id := range ExperimentIDs() {
		// Tiny scale: we only check the path exists, shapes are
		// covered elsewhere. Skip the slowest harnesses here.
		switch id {
		case "table1", "fig4", "fig5", "val-throughput":
			continue
		}
		paths, err := Export(id, 0.02, dir)
		if err != nil {
			t.Errorf("Export(%s): %v", id, err)
			continue
		}
		if len(paths) == 0 {
			t.Errorf("Export(%s) wrote no files", id)
		}
	}
}

func TestExperimentRunsToWriter(t *testing.T) {
	var b strings.Builder
	if err := Experiments["fig1"].Run(&b, 0.25); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "Figure 1") {
		t.Errorf("fig1 output = %q...", b.String()[:60])
	}
}

func TestDeterministicPolicyVariant(t *testing.T) {
	tb := NewTestbed(TestbedConfig{Seed: 4})
	if err := tb.InstallGlobalPolicy(Policy{P: 0.5, L: 50 * Millisecond, Deterministic: true}); err != nil {
		t.Fatal(err)
	}
	tb.SpawnBurn("burn", 1)
	tb.Run(10 * Second)
	rate := tb.Ctl.InjectionRate()
	if math.Abs(rate-0.5) > 0.02 {
		t.Errorf("deterministic injection rate = %v", rate)
	}
}
