// Thermal sweep: reproduce the heart of Figures 3 and 4 — sweep Dimetrodon's
// idle quantum length and proportion over the cpuburn worst case, print the
// efficiency surface, and compare the Pareto boundary against the VFS and
// p4tcc baselines.
//
// Usage: go run ./examples/thermal_sweep [-scale 0.25]
package main

import (
	"flag"
	"fmt"
	"os"

	dimetrodon "repro"
)

func main() {
	scale := flag.Float64("scale", 0.25, "run scale (1.0 = paper-duration 300s runs)")
	flag.Parse()

	fmt.Printf("Dimetrodon thermal sweep at scale %.2f\n\n", *scale)
	fmt.Println("-- Figure 3: efficiency vs idle quantum length --")
	if err := dimetrodon.Experiments["fig3"].Run(os.Stdout, dimetrodon.Scale(*scale)); err != nil {
		fmt.Fprintln(os.Stderr, "fig3:", err)
		os.Exit(1)
	}
	fmt.Println("-- Figure 4: Dimetrodon vs VFS vs p4tcc --")
	if err := dimetrodon.Experiments["fig4"].Run(os.Stdout, dimetrodon.Scale(*scale)); err != nil {
		fmt.Fprintln(os.Stderr, "fig4:", err)
		os.Exit(1)
	}
}
