// Web-server QoS (Figure 6's scenario, §3.7): the SPECWeb-like closed-loop
// workload — 440 connections, two-stage interrupt + worker service path —
// under increasing idle-cycle injection. Prints the QoS / temperature
// trade-off per setting and shows the saturation cliff.
package main

import (
	"fmt"

	dimetrodon "repro"
	"repro/internal/dtm"
	"repro/internal/machine"
	"repro/internal/units"
	"repro/internal/webserver"
)

func main() {
	fmt.Println("Web serving under Dimetrodon: QoS vs temperature (good<=3s, tolerable<=5s)")
	fmt.Println()

	duration := 120 * units.Second
	webCfg := webserver.DefaultConfig()

	type outcome struct {
		stats webserver.Stats
		temp  units.Celsius
		idle  units.Celsius
	}
	run := func(p float64, l units.Time) outcome {
		cfg := machine.DefaultConfig()
		cfg.Seed = 21
		m := machine.New(cfg)
		if p > 0 {
			if err := (dtm.Dimetrodon{P: p, L: l}).Apply(m); err != nil {
				panic(err)
			}
		}
		srv := webserver.New(m, webCfg)
		m.RunUntil(webCfg.Warmup)
		i0 := m.MeanJunctionIntegral()
		t0 := m.Now()
		m.RunUntil(duration)
		i1 := m.MeanJunctionIntegral()
		secs := (m.Now() - t0).Seconds()
		return outcome{
			stats: srv.Snapshot(m.Now()),
			temp:  units.Celsius((i1 - i0) / secs),
			idle:  m.IdleJunctionTemp(),
		}
	}

	base := run(0, 0)
	rise := float64(base.temp - base.idle)
	fmt.Printf("baseline: rise %.2fC, %s\n\n", rise, base.stats)
	fmt.Println("   p     L        r      good   tolerable   mean latency   req/s")

	l := 25 * dimetrodon.Millisecond
	for _, p := range []float64{0.25, 0.5, 0.75, 0.85, 0.9, 0.95} {
		o := run(p, l)
		r := float64(base.temp-o.temp) / rise
		fmt.Printf(" %4.2f  %-6v  %5.1f%%  %5.1f%%   %5.1f%%     %-12v  %5.1f\n",
			p, l, 100*r,
			100*o.stats.GoodFraction()/base.stats.GoodFraction(),
			100*o.stats.TolerableFraction()/base.stats.TolerableFraction(),
			o.stats.MeanLatency, o.stats.Throughput)
	}
	fmt.Println()
	fmt.Println("Stretched responses slow the closed loop (cooling the chip) until the")
	fmt.Println("injected idle saturates the cores and QoS falls off a cliff — Figure 6.")
}
