// Per-thread control (Figure 5's scenario, §3.6): a periodic, short-running
// "cool" process shares the machine with a continuously hot process (four
// calculix instances). A system-wide policy unfairly penalises the cool
// process for the hot process's heat; a per-process policy slows only the
// hot process while the system temperature still drops.
package main

import (
	"fmt"

	dimetrodon "repro"
	"repro/internal/sched"
	"repro/internal/units"
	"repro/internal/workload"
)

const (
	hotPID  = 1
	coolPID = 2
)

func main() {
	fmt.Println("Per-thread vs global control: 4×calculix (hot) + periodic burst (cool)")
	fmt.Println()

	type outcome struct {
		temp     dimetrodon.Celsius
		coolRate float64
	}
	run := func(mode string) outcome {
		tb := dimetrodon.NewTestbed(dimetrodon.TestbedConfig{Seed: 9})
		policy := dimetrodon.Policy{P: 0.75, L: 100 * dimetrodon.Millisecond}
		switch mode {
		case "global":
			if err := tb.InstallGlobalPolicy(policy); err != nil {
				panic(err)
			}
		case "per-thread":
			if err := tb.InstallProcessPolicy(hotPID, policy); err != nil {
				panic(err)
			}
		}
		if err := tb.SpawnSpec("calculix", hotPID, 4); err != nil {
			panic(err)
		}
		tb.M.Sched.Spawn(workload.PeriodicBurst(6.0, 60*units.Second), sched.SpawnConfig{
			Name:        "cool",
			ProcessID:   coolPID,
			PowerFactor: 1.0,
		})
		dur := 240 * dimetrodon.Second
		tb.Run(dur)
		return outcome{
			temp:     tb.MeanJunctionTemp(),
			coolRate: tb.M.ProcessWorkDone(coolPID) / dur.Seconds(),
		}
	}

	base := run("none")
	global := run("global")
	perThread := run("per-thread")

	idle := dimetrodon.NewTestbed(dimetrodon.TestbedConfig{Seed: 9}).IdleTemp()
	rise := float64(base.temp - idle)
	row := func(name string, o outcome) {
		r := float64(base.temp-o.temp) / rise
		fmt.Printf("%-12s junction %.1fC  temp reduction %5.1f%%  cool throughput %5.1f%%\n",
			name, float64(o.temp), 100*r, 100*o.coolRate/base.coolRate)
	}
	row("baseline", base)
	row("global", global)
	row("per-thread", perThread)
	fmt.Println()
	fmt.Println("With per-process control the cool process keeps ~100% of its throughput")
	fmt.Println("while the system cools — the paper's Figure 5 in three rows.")
}
