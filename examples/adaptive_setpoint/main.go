// Adaptive setpoint control: the online policy adjustment the paper sketches
// in §2.1 — a PI controller reads the (quantised) DTS sensors and steers the
// global injection probability to hold the hottest junction at a target,
// backing off automatically when load lightens.
package main

import (
	"fmt"

	"repro/internal/adaptive"
	"repro/internal/machine"
	"repro/internal/sched"
	"repro/internal/units"
	"repro/internal/workload"
)

func main() {
	cfg := machine.DefaultConfig()
	cfg.Seed = 11
	m := machine.New(cfg)
	idle := m.IdleJunctionTemp()
	target := units.Celsius(float64(idle) + 16)

	fmt.Printf("Adaptive Dimetrodon: hold the hottest junction at %.1fC (idle %.1fC)\n\n", float64(target), float64(idle))

	ctl, err := adaptive.Attach(m, adaptive.DefaultConfig(target))
	if err != nil {
		panic(err)
	}
	for i := 0; i < 4; i++ {
		m.Sched.Spawn(workload.Burn(), sched.SpawnConfig{
			Name: fmt.Sprintf("burn-%d", i), PowerFactor: 1,
		})
	}

	fmt.Println("  t(s)   hottest DTS   actuated p")
	for step := 0; step < 12; step++ {
		m.RunFor(15 * units.Second)
		temp, _ := ctl.TempTrace.Last()
		fmt.Printf("  %4.0f      %5.1fC       %.3f\n", m.Now().Seconds(), temp.Value, ctl.P())
	}
	fmt.Println()
	fmt.Println("The controller converges on the injection probability that holds the")
	fmt.Println("target, trading exactly as much throughput as the heat requires.")
	fmt.Println()
	fmt.Println(ctl.TempTrace.ASCII(64, 8))
	fmt.Println(ctl.PTrace.ASCII(64, 6))
}
