// Quickstart: build the simulated testbed, run the cpuburn thermal stressor
// with and without Dimetrodon idle-cycle injection, and compare temperature
// and throughput — the core trade-off of the paper in ~40 lines.
package main

import (
	"fmt"

	dimetrodon "repro"
)

func main() {
	fmt.Println("Dimetrodon quickstart: cpuburn ×4 for 60 virtual seconds")
	fmt.Println()

	run := func(label string, policy *dimetrodon.Policy) (dimetrodon.Celsius, float64) {
		tb := dimetrodon.NewTestbed(dimetrodon.TestbedConfig{Seed: 1})
		if policy != nil {
			if err := tb.InstallGlobalPolicy(*policy); err != nil {
				panic(err)
			}
		}
		tb.SpawnBurn("burn", 4)
		tb.Run(60 * dimetrodon.Second)
		temp := tb.MeanJunctionTemp()
		work := tb.WorkDone()
		fmt.Printf("%-28s junction %.1fC   power %v   work %.1f ref-s\n",
			label, float64(temp), tb.MeanPower(), work)
		return temp, work
	}

	baseTemp, baseWork := run("race-to-idle (baseline)", nil)
	policy := dimetrodon.Policy{P: 0.5, L: 10 * dimetrodon.Millisecond}
	injTemp, injWork := run(fmt.Sprintf("dimetrodon p=%.2f L=%v", policy.P, policy.L), &policy)

	idle := dimetrodon.NewTestbed(dimetrodon.TestbedConfig{Seed: 1}).IdleTemp()
	rise := float64(baseTemp - idle)
	r := float64(baseTemp-injTemp) / rise
	perf := 1 - injWork/baseWork
	fmt.Println()
	fmt.Printf("idle temperature        %.1fC\n", float64(idle))
	fmt.Printf("temperature reduction   %.1f%% of the rise over idle\n", 100*r)
	fmt.Printf("throughput reduction    %.1f%%\n", 100*perf)
	if perf > 0 {
		fmt.Printf("efficiency              %.1f:1 (paper: short idle quanta are particularly efficient)\n", r/perf)
	}
}
