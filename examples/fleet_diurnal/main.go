// Fleet diurnal: run the scenario engine's 24-machine datacenter-day
// scenario at reduced scale and read the fleet the way an operator would —
// temperature percentiles across machines, total injection overhead, and
// the violation tally. Then re-run the identical fleet with the policy
// stripped to show what the injection bought.
package main

import (
	"fmt"

	dimetrodon "repro"
)

func main() {
	const scale = dimetrodon.Scale(0.25)

	fmt.Println("Fleet diurnal: a compressed datacenter day across 24 machines")
	fmt.Println()

	managed, err := dimetrodon.RunScenario("fleet-diurnal", scale)
	if err != nil {
		panic(err)
	}
	fmt.Print(managed)
	fmt.Println()

	// The same fleet, race-to-idle: copy the registered spec and drop the
	// policy. Ad-hoc specs run without being registered.
	spec, _ := dimetrodon.LookupScenario("fleet-diurnal")
	baseline := *spec
	baseline.Name = "fleet-diurnal-baseline"
	baseline.Title = "the same fleet with no policy (race-to-idle)"
	baseline.Policy.Kind = "none"
	baseline.Policy.P = 0
	baseline.Policy.LMS = 0

	unmanaged, err := dimetrodon.RunScenarioSpec(&baseline, scale)
	if err != nil {
		panic(err)
	}
	fmt.Print(unmanaged)
	fmt.Println()

	m, u := managed.Fleet, unmanaged.Fleet
	fmt.Printf("injection bought the fleet:\n")
	fmt.Printf("  p90 mean junction   %.2fC -> %.2fC\n", u.MeanJunctionP90, m.MeanJunctionP90)
	fmt.Printf("  max peak junction   %.2fC -> %.2fC\n", u.PeakJunctionMax, m.PeakJunctionMax)
	fmt.Printf("  total power         %.0fW -> %.0fW\n", u.TotalPower, m.TotalPower)
	fmt.Printf("  work rate           %.1f -> %.1f ref-s/s (the throughput price)\n", u.TotalWorkRate, m.TotalWorkRate)
}
