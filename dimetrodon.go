// Package dimetrodon is the public API of the Dimetrodon reproduction: a
// simulated server testbed, the Dimetrodon idle-cycle-injection policy
// engine, the comparable thermal-management techniques, and the paper's
// evaluation harnesses.
//
// Dimetrodon (Bailis, Reddi, Gandhi, Brooks, Seltzer — DAC 2011) is a
// software technique for preventive, average-case thermal management: at
// every scheduling decision, with per-thread probability P the chosen thread
// is displaced by an idle quantum of length L, letting the core drop into a
// low-power state and cool. This module reproduces the paper's system and
// evaluation on a deterministic discrete-event simulation of its hardware
// testbed (see DESIGN.md for the substitution rationale).
//
// # Quick start
//
//	tb := dimetrodon.NewTestbed(dimetrodon.TestbedConfig{Seed: 1})
//	tb.InstallGlobalPolicy(dimetrodon.Policy{P: 0.5, L: 50 * dimetrodon.Millisecond})
//	tb.SpawnBurn("burn", 4) // four cpuburn threads, one per core
//	tb.Run(60 * dimetrodon.Second)
//	fmt.Println(tb.MeanJunctionTemp(), tb.WorkDone())
//
// The experiment harnesses behind every figure and table of the paper are
// exposed via the Experiments table and the cmd/dimctl command.
package dimetrodon

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/sched"
	"repro/internal/units"
	"repro/internal/workload"
)

// Re-exported time units for convenient policy construction.
const (
	Microsecond = units.Microsecond
	Millisecond = units.Millisecond
	Second      = units.Second
)

// Time is a span or instant of virtual time (integer nanoseconds).
type Time = units.Time

// Celsius is a temperature.
type Celsius = units.Celsius

// Watts is a power.
type Watts = units.Watts

// Policy is an idle-cycle-injection policy: at each scheduling decision the
// governed thread is displaced with probability P by an idle quantum of
// length L.
type Policy struct {
	P float64
	L Time
	// Deterministic selects the error-accumulator variant instead of the
	// Bernoulli draw.
	Deterministic bool
}

// TestbedConfig configures a simulated testbed.
type TestbedConfig struct {
	// Seed drives all stochastic behaviour; equal seeds reproduce runs
	// exactly. The zero value selects seed 1.
	Seed uint64
	// RecordPower enables the power-meter sample trace.
	RecordPower bool
	// TempSampleEvery enables the decimated per-core temperature traces
	// when positive.
	TempSampleEvery Time
}

// Testbed is a running simulated server with an optional Dimetrodon
// controller attached.
type Testbed struct {
	M   *machine.Machine
	Ctl *core.Controller
}

// NewTestbed builds the paper's calibrated testbed machine.
func NewTestbed(cfg TestbedConfig) *Testbed {
	mc := machine.DefaultConfig()
	if cfg.Seed != 0 {
		mc.Seed = cfg.Seed
	}
	mc.RecordPower = cfg.RecordPower
	mc.TempSampleEvery = cfg.TempSampleEvery
	m := machine.New(mc)
	ctl := core.NewController(m.RNG.Split())
	m.Sched.SetInjector(ctl)
	return &Testbed{M: m, Ctl: ctl}
}

// InstallGlobalPolicy applies a system-wide injection policy.
func (tb *Testbed) InstallGlobalPolicy(p Policy) error {
	tb.Ctl.Deterministic = p.Deterministic
	return tb.Ctl.SetGlobal(core.Params{P: p.P, L: p.L})
}

// InstallProcessPolicy applies a policy to one process's threads only — the
// per-thread control of §3.6.
func (tb *Testbed) InstallProcessPolicy(pid int, p Policy) error {
	tb.Ctl.Deterministic = p.Deterministic
	return tb.Ctl.SetProcess(pid, core.Params{P: p.P, L: p.L})
}

// SpawnBurn starts n worst-case CPU-bound (cpuburn) threads under process 0.
func (tb *Testbed) SpawnBurn(name string, n int) {
	for i := 0; i < n; i++ {
		tb.M.Sched.Spawn(workload.Burn(), sched.SpawnConfig{
			Name:        fmt.Sprintf("%s-%d", name, i),
			PowerFactor: 1.0,
		})
	}
}

// SpawnSpec starts n instances of a SPEC CPU2006 proxy ("calculix", "namd",
// "dealII", "bzip2", "gcc", "astar") under the given process ID.
func (tb *Testbed) SpawnSpec(benchmark string, pid, n int) error {
	spec, err := workload.FindSpec(benchmark)
	if err != nil {
		return err
	}
	workload.SpawnSpec(tb.M.Sched, spec, pid, n)
	return nil
}

// Run advances the testbed by dt of virtual time.
func (tb *Testbed) Run(dt Time) { tb.M.RunFor(dt) }

// Now returns the current virtual time.
func (tb *Testbed) Now() Time { return tb.M.Now() }

// MeanJunctionTemp returns the across-core mean junction temperature now.
func (tb *Testbed) MeanJunctionTemp() Celsius {
	temps := tb.M.JunctionTemps()
	var sum float64
	for _, t := range temps {
		sum += float64(t)
	}
	return Celsius(sum / float64(len(temps)))
}

// IdleTemp returns the all-idle equilibrium junction temperature — the
// baseline against which the paper normalises temperature reductions.
func (tb *Testbed) IdleTemp() Celsius { return tb.M.IdleJunctionTemp() }

// WorkDone returns the total completed work in reference-seconds.
func (tb *Testbed) WorkDone() float64 { return tb.M.TotalWorkDone() }

// MeanPower returns the average package power since t=0.
func (tb *Testbed) MeanPower() Watts { return tb.M.Energy.MeanPower() }
